//! Index traits and capability descriptors.
//!
//! Two traits structure the workspace:
//!
//! * [`AnnIndex`] is the uniform, object-safe query interface implemented by
//!   every method in the study (DSTree, iSAX2+, VA+file, HNSW, IMI, SRS,
//!   QALSH, FLANN). The evaluation harness only talks to `dyn AnnIndex`.
//! * [`HierarchicalIndex`] exposes the tree structure of indexes built by
//!   conservative recursive partitioning (DSTree, iSAX2+). The paper's
//!   Algorithm 1 (exact search) and Algorithm 2 (δ-ε-approximate search) are
//!   implemented once, generically, over this trait in [`crate::search`].

use crate::error::Result;
use crate::query::{SearchParams, SearchResult};
use crate::stats::{QueryStats, StoreCounters};

/// How a method summarizes (represents) the data, mirroring the
/// "Representation" column of Table 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Representation {
    /// Raw series, no reduced representation.
    Raw,
    /// Extended Adaptive Piecewise Constant Approximation (DSTree).
    Eapca,
    /// indexable Symbolic Aggregate approXimation (iSAX family).
    Isax,
    /// Discrete Fourier Transform coefficients (modified VA+file).
    Dft,
    /// (Optimized) product quantization codes (IMI).
    Opq,
    /// LSH / random projection signatures (SRS, QALSH).
    Signatures,
    /// Hierarchical k-means / kd-tree partitions (FLANN).
    Partitions,
    /// Proximity graph over raw vectors (HNSW, NSG).
    Graph,
}

impl Representation {
    /// Human-readable name used in the Table 1 reproduction.
    pub fn name(&self) -> &'static str {
        match self {
            Representation::Raw => "Raw",
            Representation::Eapca => "EAPCA",
            Representation::Isax => "iSAX",
            Representation::Dft => "DFT",
            Representation::Opq => "OPQ",
            Representation::Signatures => "Signatures",
            Representation::Partitions => "Partitions",
            Representation::Graph => "Graph",
        }
    }
}

/// What a method can do — the paper's Table 1 as a queryable structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Supports exact k-NN queries.
    pub exact: bool,
    /// Supports ng-approximate (no guarantee) queries.
    pub ng_approximate: bool,
    /// Supports ε-approximate queries.
    pub epsilon_approximate: bool,
    /// Supports δ-ε-approximate queries.
    pub delta_epsilon_approximate: bool,
    /// Can operate on disk-resident data (through the simulated storage
    /// layer); methods without this flag are in-memory only.
    pub disk_resident: bool,
    /// Accepts new series after the build through
    /// [`AnnIndex::insert_batch`] (streaming ingest); methods without this
    /// flag answer queries over a frozen collection and return
    /// [`crate::Error::UnsupportedMode`] from `insert_batch`.
    pub streaming_insert: bool,
    /// The reduced representation the method indexes.
    pub representation: Representation,
}

impl Capabilities {
    /// Whether the given search mode is supported.
    pub fn supports(&self, mode: &crate::query::SearchMode) -> bool {
        use crate::query::SearchMode::*;
        match mode {
            Exact => self.exact,
            Ng { .. } => self.ng_approximate,
            Epsilon { .. } => self.epsilon_approximate,
            DeltaEpsilon { .. } => self.delta_epsilon_approximate,
        }
    }
}

/// Uniform query interface implemented by every similarity search method in
/// the study.
pub trait AnnIndex: Send + Sync {
    /// Short method name ("DSTree", "iSAX2+", "VA+file", "HNSW", ...).
    fn name(&self) -> &'static str;

    /// The guarantees and representation of this method (Table 1).
    fn capabilities(&self) -> Capabilities;

    /// Number of series indexed.
    fn num_series(&self) -> usize;

    /// Length (dimensionality) of the indexed series.
    fn series_len(&self) -> usize;

    /// Approximate main-memory footprint of the index structure in bytes
    /// (excluding any raw data kept on simulated disk).
    fn memory_footprint(&self) -> usize;

    /// Answers a k-NN query under the requested guarantee level.
    ///
    /// # Errors
    /// Returns [`crate::Error::UnsupportedMode`] if the index cannot honour
    /// the requested [`crate::SearchMode`], and
    /// [`crate::Error::DimensionMismatch`] if `query` does not have
    /// [`Self::series_len`] values.
    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult>;

    /// Answers a batch of k-NN queries under one parameter setting.
    ///
    /// The default implementation simply calls [`Self::search`] once per
    /// query. Indexes override it when a batch lets them amortize per-query
    /// setup — e.g. IMI builds the ADC lookup tables of every query in a
    /// single pass over its codebooks, and the scan-based methods reuse
    /// per-batch scratch buffers instead of reallocating them per query.
    ///
    /// # Contract for implementors
    ///
    /// * `results[i]` answers `queries[i]`; the output length equals the
    ///   input length.
    /// * Every query is answered exactly as [`Self::search`] would answer
    ///   it: same neighbors, same errors, same per-query [`QueryStats`]
    ///   (batching may only amortize *work*, never change *answers* — this
    ///   is what lets the parallel workload runner reproduce the sequential
    ///   runner's figures exactly). Counters derived from shared storage
    ///   state — the simulated buffer pool's I/O-operation charges — are
    ///   exempt: they depend on access interleaving, exactly as between two
    ///   sequential runs.
    /// * Failures are per query: one unsupported or malformed query yields
    ///   an `Err` at its position without poisoning the rest of the batch.
    fn search_batch(
        &self,
        queries: &[&[f32]],
        params: &SearchParams,
    ) -> Vec<Result<SearchResult>> {
        queries.iter().map(|q| self.search(q, params)).collect()
    }

    /// Ingests a batch of new series into a live index (streaming ingest).
    ///
    /// Opt-in via [`Capabilities::streaming_insert`]; the default
    /// implementation rejects the batch with
    /// [`crate::Error::UnsupportedMode`]. The new series receive the next
    /// consecutive dataset positions (`num_series()` before the call, ...).
    ///
    /// # Contract for implementors (ingest equivalence)
    ///
    /// After ingesting series `0..n` in any order of calls and any batch
    /// chunking, exact and ε/δ-ε answers must be **bit-identical** to a
    /// fresh build over the same `n` series in the same arrival order:
    /// same neighbors, same distances, same accuracy. Only I/O-economics
    /// counters ([`QueryStats`] fields derived from buffer-pool state) may
    /// differ. An ingest must either apply the whole batch or — on a
    /// validation error such as a dimension mismatch — leave the index
    /// exactly as it was (no partial batches).
    ///
    /// # Errors
    /// [`crate::Error::UnsupportedMode`] if the index is build-once;
    /// [`crate::Error::DimensionMismatch`] if any series in the batch does
    /// not have [`Self::series_len`] values (the index is left unchanged).
    fn insert_batch(&mut self, batch: &[&[f32]]) -> Result<()> {
        let _ = batch;
        Err(crate::Error::UnsupportedMode(format!(
            "{} does not support streaming ingest",
            self.name()
        )))
    }

    /// Cumulative lifetime counters of the series store backing this
    /// index, for live observability scrapes.
    ///
    /// `None` (the default) means the index holds no series store —
    /// purely in-memory methods (HNSW, IMI, FLANN) have no I/O economy
    /// to report. Disk-capable methods return their store's running
    /// totals; sharded indexes return the sum over their shards.
    /// Reading the counters must never perturb them (a scrape is not a
    /// query).
    fn store_counters(&self) -> Option<StoreCounters> {
        None
    }
}

/// A node handle inside a [`HierarchicalIndex`]. Implementations typically
/// use an arena index.
pub type NodeId = usize;

/// Structural view of a hierarchical index built by conservative recursive
/// partitioning, as required by the optimal exact NN algorithm the paper
/// builds on (Hjaltason & Samet / Berchtold et al.).
///
/// "Conservative" means that the lower-bound distance of a node never
/// exceeds the true distance of any series stored beneath it; this is what
/// makes Algorithm 1 exact and Algorithm 2's ε bound valid.
pub trait HierarchicalIndex {
    /// Root node(s) of the index. Most trees have one root; iSAX-style
    /// indexes have one root child per initial SAX word.
    fn roots(&self) -> Vec<NodeId>;

    /// Whether `node` is a leaf.
    fn is_leaf(&self, node: NodeId) -> bool;

    /// Children of an internal node (empty for leaves).
    fn children(&self, node: NodeId) -> Vec<NodeId>;

    /// Lower bound on the distance between `query` and any series stored in
    /// the subtree rooted at `node`.
    fn min_dist(&self, query: &[f32], node: NodeId) -> f32;

    /// Visits every series stored in leaf `node`, invoking `visit` with the
    /// series' dataset position and raw values. The implementation must
    /// account for storage-layer costs in `stats`.
    fn visit_leaf(
        &self,
        node: NodeId,
        stats: &mut QueryStats,
        visit: &mut dyn FnMut(usize, &[f32]),
    );

    /// Number of series stored in leaf `node` (0 for internal nodes).
    fn leaf_size(&self, node: NodeId) -> usize;

    /// Refines every series stored in leaf `node` against `query` under an
    /// early-abandonment bound, invoking `accept` with the dataset position
    /// and exact distance of each candidate that survives; `accept` returns
    /// the (possibly tightened) bound for subsequent candidates. Returns the
    /// number of candidates examined (each counts as one distance
    /// computation, abandoned or not).
    ///
    /// The default implementation walks [`Self::visit_leaf`] and runs
    /// [`crate::distance::euclidean_early_abandon`] on each raw series —
    /// exactly what the generic search driver used to inline. Indexes whose
    /// leaves live in a `SeriesStore` override this to route contiguous
    /// leaf runs through the store's codec-aware refinement scan, which
    /// prunes on compressed pages and recomputes surviving distances from
    /// exact f32 series; the accumulation-order contract of
    /// [`crate::distance`] makes the two paths report bit-identical
    /// distances.
    fn refine_leaf(
        &self,
        node: NodeId,
        query: &[f32],
        best_so_far: f32,
        stats: &mut QueryStats,
        accept: &mut dyn FnMut(usize, f32) -> f32,
    ) -> u64 {
        let mut scanned = 0u64;
        let mut bound = best_so_far;
        self.visit_leaf(node, stats, &mut |id, series| {
            scanned += 1;
            if let Some(d) = crate::distance::euclidean_early_abandon(query, series, bound) {
                bound = accept(id, d);
            }
        });
        scanned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SearchMode;

    #[test]
    fn capabilities_supports_matches_flags() {
        let caps = Capabilities {
            exact: true,
            ng_approximate: true,
            epsilon_approximate: false,
            delta_epsilon_approximate: false,
            disk_resident: true,
            streaming_insert: false,
            representation: Representation::Eapca,
        };
        assert!(caps.supports(&SearchMode::Exact));
        assert!(caps.supports(&SearchMode::Ng { nprobe: 1 }));
        assert!(!caps.supports(&SearchMode::Epsilon { epsilon: 1.0 }));
        assert!(!caps.supports(&SearchMode::DeltaEpsilon {
            epsilon: 1.0,
            delta: 0.5
        }));
    }

    #[test]
    fn default_search_batch_answers_queries_in_order() {
        use crate::query::{SearchParams, SearchResult};
        use crate::Neighbor;

        /// Echoes the first query value as the neighbor id, so order is
        /// observable.
        struct Echo;
        impl AnnIndex for Echo {
            fn name(&self) -> &'static str {
                "echo"
            }
            fn capabilities(&self) -> Capabilities {
                Capabilities {
                    exact: true,
                    ng_approximate: false,
                    epsilon_approximate: false,
                    delta_epsilon_approximate: false,
                    disk_resident: false,
                    streaming_insert: false,
                    representation: Representation::Raw,
                }
            }
            fn num_series(&self) -> usize {
                1
            }
            fn series_len(&self) -> usize {
                1
            }
            fn memory_footprint(&self) -> usize {
                0
            }
            fn search(&self, query: &[f32], _params: &SearchParams) -> Result<SearchResult> {
                if query.len() != 1 {
                    return Err(crate::Error::DimensionMismatch {
                        expected: 1,
                        found: query.len(),
                    });
                }
                Ok(SearchResult::new(
                    vec![Neighbor::new(query[0] as usize, 0.0)],
                    QueryStats::new(),
                ))
            }
        }

        let mut index = Echo;
        let series = [0.5f32];
        let batch: Vec<&[f32]> = vec![&series];
        assert!(
            matches!(
                index.insert_batch(&batch),
                Err(crate::Error::UnsupportedMode(_))
            ),
            "the default insert_batch must reject ingest on build-once indexes"
        );
        let index = index;
        let q0 = [0.0f32];
        let q1 = [1.0f32];
        let bad = [2.0f32, 2.0];
        let q3 = [3.0f32];
        let queries: Vec<&[f32]> = vec![&q0, &q1, &bad, &q3];
        let results = index.search_batch(&queries, &SearchParams::exact(1));
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].as_ref().unwrap().neighbors[0].index, 0);
        assert_eq!(results[1].as_ref().unwrap().neighbors[0].index, 1);
        assert!(results[2].is_err(), "failures must stay per-query");
        assert_eq!(results[3].as_ref().unwrap().neighbors[0].index, 3);
    }

    #[test]
    fn representation_names_are_stable() {
        assert_eq!(Representation::Eapca.name(), "EAPCA");
        assert_eq!(Representation::Isax.name(), "iSAX");
        assert_eq!(Representation::Dft.name(), "DFT");
        assert_eq!(Representation::Opq.name(), "OPQ");
        assert_eq!(Representation::Raw.name(), "Raw");
        assert_eq!(Representation::Graph.name(), "Graph");
        assert_eq!(Representation::Signatures.name(), "Signatures");
        assert_eq!(Representation::Partitions.name(), "Partitions");
    }
}
