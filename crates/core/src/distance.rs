//! Euclidean distance kernels.
//!
//! The paper evaluates whole-matching similarity under the Euclidean
//! distance. All indexes in this workspace refine candidates with the
//! early-abandoning variant, which stops accumulating squared differences as
//! soon as the partial sum exceeds the best-so-far distance — the single
//! most important CPU optimization for leaf refinement.

/// Squared Euclidean distance between two equally-sized slices.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Manual 4-way unrolling: lets the compiler vectorize without relying on
    // floating-point reassociation flags.
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    let mut acc = acc0 + acc1 + acc2 + acc3;
    for j in chunks * 4..a.len() {
        let d = a[j] - b[j];
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two equally-sized slices.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

/// Early-abandoning Euclidean distance.
///
/// Accumulates squared differences and returns `None` as soon as the partial
/// sum exceeds `best_so_far`² (i.e., the candidate cannot improve on the
/// current best answer). Returns `Some(distance)` otherwise.
///
/// `best_so_far` is expressed in *un-squared* Euclidean units, matching the
/// distances returned by [`euclidean`].
///
/// The accumulation order is the same for every `best_so_far` (an infinite
/// bound merely never abandons — `acc > inf` is always false, so no branch
/// is needed for it). This is a correctness property, not a style choice:
/// a *kept* candidate's distance must not depend on how good the best
/// answer already was, or the same series refined in different traversal
/// orders (sequential vs. sharded search) would report distances apart by
/// an ULP and break the bit-identity contract of exact search.
#[inline]
pub fn euclidean_early_abandon(a: &[f32], b: &[f32], best_so_far: f32) -> Option<f32> {
    debug_assert_eq!(a.len(), b.len());
    let threshold = best_so_far * best_so_far;
    let mut acc = 0.0f32;
    // Check the abandonment condition every 8 points: frequent enough to
    // save work, rare enough not to dominate the loop with branches.
    for (ca, cb) in a.chunks(8).zip(b.chunks(8)) {
        for (x, y) in ca.iter().zip(cb.iter()) {
            let d = x - y;
            acc += d * d;
        }
        if acc > threshold {
            return None;
        }
    }
    Some(acc.sqrt())
}

/// Squared Euclidean norm of a slice.
#[inline]
pub fn squared_norm(a: &[f32]) -> f32 {
    a.iter().map(|v| v * v).sum()
}

/// Dot product of two equally-sized slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_basic() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let v = vec![1.5f32; 37];
        assert_eq!(squared_euclidean(&v, &v), 0.0);
        assert_eq!(euclidean(&v, &v), 0.0);
    }

    #[test]
    fn unrolled_matches_naive_on_odd_lengths() {
        for len in [1usize, 2, 3, 5, 7, 8, 9, 15, 16, 17, 63, 100] {
            let a: Vec<f32> = (0..len).map(|i| i as f32 * 0.37).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            let naive: f32 = a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            let fast = squared_euclidean(&a, &b);
            let tol = 1e-5 * naive.abs().max(1.0);
            assert!((naive - fast).abs() < tol, "len={len}: {naive} vs {fast}");
        }
    }

    #[test]
    fn early_abandon_agrees_when_not_abandoning() {
        let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..64).map(|i| i as f32 + 1.0).collect();
        let exact = euclidean(&a, &b);
        let ea = euclidean_early_abandon(&a, &b, f32::INFINITY).unwrap();
        assert!((exact - ea).abs() < 1e-4);
        let ea2 = euclidean_early_abandon(&a, &b, exact + 1.0).unwrap();
        assert!((exact - ea2).abs() < 1e-4);
    }

    #[test]
    fn early_abandon_abandons_hopeless_candidates() {
        let a = vec![0.0f32; 256];
        let b = vec![10.0f32; 256];
        assert_eq!(euclidean_early_abandon(&a, &b, 1.0), None);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(squared_norm(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let a = [0.0f32, 1.0, 2.0, 3.0];
        let b = [4.0f32, 2.0, 0.0, 1.0];
        let c = [1.0f32, 1.0, 1.0, 1.0];
        assert!(euclidean(&a, &b) <= euclidean(&a, &c) + euclidean(&c, &b) + 1e-6);
    }
}
