//! Euclidean distance kernels.
//!
//! The paper evaluates whole-matching similarity under the Euclidean
//! distance. All indexes in this workspace refine candidates with the
//! early-abandoning variant, which stops accumulating squared differences as
//! soon as the partial sum exceeds the best-so-far distance — the single
//! most important CPU optimization for leaf refinement.
//!
//! # The accumulation-order contract
//!
//! Every kernel in this module accumulates squared differences in **one
//! canonical order**, implemented once in the private `sum_squares_abandoning`
//! helper:
//!
//! * four independent accumulators over interleaved 4-element lanes
//!   (`acc_k` sums positions `j` with `j % 4 == k`), which lets the
//!   compiler vectorize the loop with FMA-friendly independent chains
//!   without relying on floating-point reassociation flags;
//! * abandonment checks every 8 positions (two 4-lanes), on the horizontal
//!   reduction `(acc0 + acc1) + (acc2 + acc3)` — reading the partial sum
//!   never alters the accumulators;
//! * the final value is that same reduction, followed by the scalar tail
//!   (`len % 4` trailing positions) added in index order.
//!
//! This is a repo-wide correctness contract, not a style choice:
//! [`squared_euclidean`], [`euclidean_early_abandon`] and the fused
//! quantized-decode kernels ([`euclidean_early_abandon_u8`],
//! [`euclidean_early_abandon_f16`]) must produce **bit-identical** partial
//! sums for the same inputs, because a kept candidate's distance must not
//! depend on which entry point examined it. If `euclidean(a, b)` and
//! `euclidean_early_abandon(a, b, ∞)` could disagree by an ULP, the same
//! series refined through different code paths (sequential scan vs. tree
//! leaf vs. compressed-page refinement) would report distances apart by an
//! ULP and break the bit-identity contract of exact search. The property
//! suite pins the entry points against each other bit-for-bit.
//!
//! Thresholds are compared in **squared space end-to-end** via the private
//! `squared_threshold` helper, which saturates at [`f32::MAX`] instead of
//! overflowing to `inf`: a large-but-finite bound (e.g. `f32::MAX`) must
//! still abandon candidates whose squared sum overflows, not silently
//! disable abandonment.

/// The canonical accumulation order (see the module docs): 4-way lanes,
/// abandonment check on the horizontal sum every 8 positions, reduction
/// `(acc0 + acc1) + (acc2 + acc3)`, scalar tail in index order.
///
/// Returns `None` as soon as a checked partial sum exceeds `threshold`
/// (a squared bound; pass `f32::INFINITY` to never abandon), otherwise
/// `Some(total squared sum)`.
#[inline(always)]
fn sum_squares_abandoning<D>(len: usize, diff: D, threshold: f32) -> Option<f32>
where
    D: Fn(usize) -> f32,
{
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    let quads = len / 4;
    let mut q = 0usize;
    while q < quads {
        // Check the abandonment condition every 8 positions: frequent
        // enough to save work, rare enough not to dominate the loop with
        // branches.
        let stop = (q + 2).min(quads);
        while q < stop {
            let j = q * 4;
            let d0 = diff(j);
            let d1 = diff(j + 1);
            let d2 = diff(j + 2);
            let d3 = diff(j + 3);
            acc0 += d0 * d0;
            acc1 += d1 * d1;
            acc2 += d2 * d2;
            acc3 += d3 * d3;
            q += 1;
        }
        if (acc0 + acc1) + (acc2 + acc3) > threshold {
            return None;
        }
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for j in quads * 4..len {
        let d = diff(j);
        acc += d * d;
    }
    if acc > threshold {
        return None;
    }
    Some(acc)
}

/// The squared-space abandonment threshold for an un-squared bound,
/// saturated at [`f32::MAX`] instead of overflowing.
///
/// `best_so_far * best_so_far` overflows to `inf` for any finite bound
/// above `√f32::MAX ≈ 1.84e19`, which would make `partial > threshold`
/// unconditionally false and silently disable abandonment. Saturating is
/// exact: a partial squared sum can only exceed `f32::MAX` by being `inf`,
/// and a candidate whose squared distance is `inf` has (kernel-computed)
/// distance `inf`, which no finite bound keeps; conversely any finite
/// squared sum `≤ f32::MAX` has distance `≤ √f32::MAX`, below every bound
/// whose square overflowed. An infinite bound stays infinite (never
/// abandons).
#[inline]
fn squared_threshold(best_so_far: f32) -> f32 {
    let t = best_so_far * best_so_far;
    if t.is_finite() || !best_so_far.is_finite() {
        t
    } else {
        f32::MAX
    }
}

/// Squared Euclidean distance between two equally-sized slices, in the
/// canonical accumulation order (see the module docs).
///
/// # Panics
/// Panics if the slices have different lengths — in release builds too.
/// A silent truncation (or out-of-bounds read) on mismatched inputs would
/// corrupt answers unpredictably; the mismatch is always a caller bug.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "squared_euclidean: slice lengths differ");
    sum_squares_abandoning(a.len(), |j| a[j] - b[j], f32::INFINITY)
        .expect("an infinite threshold never abandons")
}

/// Euclidean distance between two equally-sized slices.
///
/// # Panics
/// Panics if the slices have different lengths (see [`squared_euclidean`]).
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

/// Early-abandoning Euclidean distance.
///
/// Accumulates squared differences in the canonical order (see the module
/// docs) and returns `None` as soon as the partial sum exceeds
/// `best_so_far`² (i.e., the candidate cannot improve on the current best
/// answer). Returns `Some(distance)` otherwise; a returned distance is
/// bit-identical to [`euclidean`] on the same inputs, and never exceeds
/// `best_so_far`.
///
/// `best_so_far` is expressed in *un-squared* Euclidean units, matching the
/// distances returned by [`euclidean`]; the comparison itself happens in
/// squared space through the saturating private `squared_threshold`, so
/// large-but-finite bounds keep abandoning (no `inf` overflow). The
/// accumulation order is the same for every `best_so_far` (an infinite
/// bound merely never abandons), so a *kept* candidate's distance does not
/// depend on how good the best answer already was.
///
/// # Panics
/// Panics if the slices have different lengths — in release builds too,
/// consistent with [`squared_euclidean`] (the old `chunks(8).zip` silently
/// truncated mismatched slices in release builds).
#[inline]
pub fn euclidean_early_abandon(a: &[f32], b: &[f32], best_so_far: f32) -> Option<f32> {
    assert_eq!(
        a.len(),
        b.len(),
        "euclidean_early_abandon: slice lengths differ"
    );
    sum_squares_abandoning(a.len(), |j| a[j] - b[j], squared_threshold(best_so_far))
        .map(f32::sqrt)
}

/// Fused u8-decode + early-abandoning Euclidean distance — the compressed
/// page tier's scan kernel.
///
/// `codes` holds one u8 per position; position `j` decodes to
/// `min + codes[j] as f32 * scale` (the affine per-page quantization of
/// `hydra-storage`), and the decoded value feeds the canonical accumulation
/// order directly — no intermediate buffer. The result is bit-identical to
/// decoding into a scratch slice and calling [`euclidean_early_abandon`]
/// on it (the property suite pins this).
///
/// `threshold` is an un-squared bound like `best_so_far`; callers pass the
/// conservative `best + quantization_error` bound, so `None` proves the
/// *exact* distance cannot beat the best answer either.
///
/// # Panics
/// Panics if `query` and `codes` have different lengths.
#[inline]
pub fn euclidean_early_abandon_u8(
    query: &[f32],
    codes: &[u8],
    min: f32,
    scale: f32,
    threshold: f32,
) -> Option<f32> {
    assert_eq!(
        query.len(),
        codes.len(),
        "euclidean_early_abandon_u8: query and code lengths differ"
    );
    sum_squares_abandoning(
        query.len(),
        |j| query[j] - (min + codes[j] as f32 * scale),
        squared_threshold(threshold),
    )
    .map(f32::sqrt)
}

/// Fused f16-decode + early-abandoning Euclidean distance (see
/// [`euclidean_early_abandon_u8`]); `codes` holds IEEE 754 binary16 bit
/// patterns, decoded with [`crate::half::f32_from_f16_bits`].
///
/// # Panics
/// Panics if `query` and `codes` have different lengths.
#[inline]
pub fn euclidean_early_abandon_f16(query: &[f32], codes: &[u16], threshold: f32) -> Option<f32> {
    assert_eq!(
        query.len(),
        codes.len(),
        "euclidean_early_abandon_f16: query and code lengths differ"
    );
    sum_squares_abandoning(
        query.len(),
        |j| query[j] - crate::half::f32_from_f16_bits(codes[j]),
        squared_threshold(threshold),
    )
    .map(f32::sqrt)
}

/// Squared Euclidean norm of a slice.
#[inline]
pub fn squared_norm(a: &[f32]) -> f32 {
    a.iter().map(|v| v * v).sum()
}

/// Dot product of two equally-sized slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_basic() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let v = vec![1.5f32; 37];
        assert_eq!(squared_euclidean(&v, &v), 0.0);
        assert_eq!(euclidean(&v, &v), 0.0);
    }

    #[test]
    fn unrolled_matches_naive_on_odd_lengths() {
        for len in [1usize, 2, 3, 5, 7, 8, 9, 15, 16, 17, 63, 100] {
            let a: Vec<f32> = (0..len).map(|i| i as f32 * 0.37).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            let naive: f32 = a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            let fast = squared_euclidean(&a, &b);
            let tol = 1e-5 * naive.abs().max(1.0);
            assert!((naive - fast).abs() < tol, "len={len}: {naive} vs {fast}");
        }
    }

    /// The heart of the kernel-consistency bugfix: both entry points share
    /// one accumulation order, so a kept candidate's distance is the same
    /// bit pattern through either — for every length, including tails.
    #[test]
    fn entry_points_agree_bit_for_bit() {
        for len in [1usize, 3, 4, 7, 8, 9, 15, 16, 17, 31, 64, 100, 257] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).cos() * 3.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 1.3).sin() * 2.0).collect();
            let exact = euclidean(&a, &b);
            let ea = euclidean_early_abandon(&a, &b, f32::INFINITY).unwrap();
            assert_eq!(exact.to_bits(), ea.to_bits(), "len={len}");
            // A kept candidate reports the exact bits under any bound.
            // (A bound exactly equal to the distance may abandon: squaring
            // the rounded sqrt can land just below the accumulated sum.)
            if let Some(kept) = euclidean_early_abandon(&a, &b, exact) {
                assert_eq!(exact.to_bits(), kept.to_bits(), "len={len}");
            }
        }
    }

    #[test]
    fn early_abandon_agrees_when_not_abandoning() {
        let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..64).map(|i| i as f32 + 1.0).collect();
        let exact = euclidean(&a, &b);
        let ea = euclidean_early_abandon(&a, &b, f32::INFINITY).unwrap();
        assert_eq!(exact.to_bits(), ea.to_bits());
        let ea2 = euclidean_early_abandon(&a, &b, exact + 1.0).unwrap();
        assert_eq!(exact.to_bits(), ea2.to_bits());
    }

    #[test]
    fn early_abandon_abandons_hopeless_candidates() {
        let a = vec![0.0f32; 256];
        let b = vec![10.0f32; 256];
        assert_eq!(euclidean_early_abandon(&a, &b, 1.0), None);
    }

    /// Regression: `best_so_far * best_so_far` used to overflow to `inf`
    /// for large-but-finite bounds, silently disabling abandonment — the
    /// kernel would then *keep* a candidate at distance `inf`, violating
    /// the `Some(d) ⟹ d ≤ best_so_far` contract.
    #[test]
    fn large_finite_bounds_still_abandon() {
        // Each term is (1e20)² = 1e40, far beyond f32::MAX: the squared
        // sum overflows to inf, so the candidate's distance is inf and no
        // finite bound may keep it.
        let a = vec![0.0f32; 8];
        let b = vec![1e20f32; 8];
        assert_eq!(euclidean(&a, &b), f32::INFINITY);
        for bound in [f32::MAX, 1e30f32, 2e19f32] {
            assert_eq!(
                euclidean_early_abandon(&a, &b, bound),
                None,
                "bound {bound} must abandon a candidate at distance inf"
            );
        }
        // An infinite bound never abandons — it faithfully reports inf.
        assert_eq!(
            euclidean_early_abandon(&a, &b, f32::INFINITY),
            Some(f32::INFINITY)
        );
        // Large-but-finite distances below a saturated bound are kept: the
        // clamp is exact, not merely conservative.
        let c = vec![1e18f32; 8];
        let d = euclidean(&a, &c);
        assert!(d.is_finite());
        assert_eq!(
            euclidean_early_abandon(&a, &c, f32::MAX).unwrap().to_bits(),
            d.to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "slice lengths differ")]
    fn squared_euclidean_rejects_mismatched_lengths() {
        squared_euclidean(&[1.0, 2.0, 3.0], &[1.0, 2.0]);
    }

    /// Regression: the old `chunks(8).zip` silently truncated mismatched
    /// slices in release builds; the mismatch is now an explicit panic,
    /// consistent with [`squared_euclidean`].
    #[test]
    #[should_panic(expected = "slice lengths differ")]
    fn early_abandon_rejects_mismatched_lengths() {
        euclidean_early_abandon(&[1.0, 2.0, 3.0], &[1.0, 2.0], f32::INFINITY);
    }

    #[test]
    fn fused_u8_kernel_matches_decode_then_distance() {
        for len in [1usize, 4, 7, 8, 9, 31, 64, 100] {
            let q: Vec<f32> = (0..len).map(|i| (i as f32 * 0.9).sin() * 4.0).collect();
            let codes: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            let (min, scale) = (-3.25f32, 0.031f32);
            let decoded: Vec<f32> = codes.iter().map(|&c| min + c as f32 * scale).collect();
            for bound in [f32::INFINITY, 5.0, 0.5] {
                let fused = euclidean_early_abandon_u8(&q, &codes, min, scale, bound);
                let two_step = euclidean_early_abandon(&q, &decoded, bound);
                assert_eq!(
                    fused.map(f32::to_bits),
                    two_step.map(f32::to_bits),
                    "len={len} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn fused_f16_kernel_matches_decode_then_distance() {
        use crate::half::{f16_bits_from_f32, f32_from_f16_bits};
        let len = 67;
        let q: Vec<f32> = (0..len).map(|i| (i as f32 * 0.4).cos() * 2.0).collect();
        let codes: Vec<u16> = (0..len)
            .map(|i| f16_bits_from_f32((i as f32 * 1.7).sin() * 3.0))
            .collect();
        let decoded: Vec<f32> = codes.iter().map(|&c| f32_from_f16_bits(c)).collect();
        for bound in [f32::INFINITY, 4.0, 0.25] {
            let fused = euclidean_early_abandon_f16(&q, &codes, bound);
            let two_step = euclidean_early_abandon(&q, &decoded, bound);
            assert_eq!(
                fused.map(f32::to_bits),
                two_step.map(f32::to_bits),
                "bound={bound}"
            );
        }
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(squared_norm(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let a = [0.0f32, 1.0, 2.0, 3.0];
        let b = [4.0f32, 2.0, 0.0, 1.0];
        let c = [1.0f32, 1.0, 1.0, 1.0];
        assert!(euclidean(&a, &b) <= euclidean(&a, &c) + euclidean(&c, &b) + 1e-6);
    }
}
