//! # hydra-shard
//!
//! Sharded scale-out search: the in-process half of the system's
//! partition-and-aggregate story. A [`ShardedIndex`] wraps `S` inner
//! indexes — one per shard of a dataset partitioned by
//! [`hydra_data::partition()`] — behind the same [`AnnIndex`] interface
//! every other method implements, so the figure binaries, the parallel
//! workload runner, persistence, and `hydra-serve` all work over shards
//! unchanged.
//!
//! The adapter does three things, each with a hard contract:
//!
//! 1. **Fan-out**: `search`/`search_batch` run on all shards via scoped
//!    threads (shard-parallel, like the multi-process router that mirrors
//!    this adapter over TCP).
//! 2. **Merge**: per-shard answers are translated to global ids through
//!    the [`ShardMap`] and merged with [`hydra_core::merge_top_k`] —
//!    deterministic (distance, global id) ordering, so shard count and
//!    answer arrival order never change the result. For exact search this
//!    is an equivalence: the merged answer is bit-identical to the
//!    unsharded index's answer over the whole dataset, at any `S` and any
//!    thread count (`tests/integration_shard.rs`).
//! 3. **Stats**: per-query [`hydra_core::QueryStats`] are the *sum* of the
//!    shard stats (counters added, the δ-stop flag ORed via
//!    [`hydra_core::QueryStats::merge`]) — total work is reported, exactly
//!    as if one index had done it all.
//!
//! What sharding does to the guarantee classes: exact stays exact (every
//! shard returns its true local top-k, and the true global top-k is a
//! subset of their union); ε-approximate stays ε-approximate (each true
//! global neighbor lives in some shard, whose answer is within `(1 + ε)`
//! of that shard's — hence of the global — true k-th distance);
//! δ-ε-approximate degrades to `δ^S` (the per-shard guarantees are
//! independent); ng-approximate applies its effort knob per shard, so a
//! sharded run does up to `S×` the work and typically reports equal or
//! better accuracy.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use hydra_core::{
    merge_top_k, AnnIndex, Capabilities, Dataset, Error, Neighbor, QueryStats, Result,
    SearchParams, SearchResult,
};
use hydra_data::{partition, PartitionScheme, ShardMap};

/// An [`AnnIndex`] that fans every query out to `S` per-shard inner
/// indexes and merges their answers (see the crate docs).
pub struct ShardedIndex {
    shards: Vec<Box<dyn AnnIndex>>,
    map: ShardMap,
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("method", &self.name())
            .field("num_shards", &self.map.num_shards())
            .field("scheme", &self.map.scheme())
            .field("num_series", &self.map.total())
            .finish()
    }
}

impl ShardedIndex {
    /// Wraps per-shard indexes (shard order) behind one sharded view.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] if the shard list does not match the
    /// map (count or per-shard series count), the shards disagree on
    /// series length, or they are different methods — any of these would
    /// silently corrupt id translation or the merged answers.
    pub fn new(shards: Vec<Box<dyn AnnIndex>>, map: ShardMap) -> Result<Self> {
        if shards.len() != map.num_shards() {
            return Err(Error::InvalidParameter(format!(
                "{} shard indexes for a {}-shard map",
                shards.len(),
                map.num_shards()
            )));
        }
        for (s, shard) in shards.iter().enumerate() {
            if shard.num_series() != map.shard_len(s) {
                return Err(Error::InvalidParameter(format!(
                    "shard {s} holds {} series but the map assigns it {}",
                    shard.num_series(),
                    map.shard_len(s)
                )));
            }
            if shard.series_len() != shards[0].series_len() {
                return Err(Error::InvalidParameter(format!(
                    "shard {s} indexes series of length {} (shard 0: {})",
                    shard.series_len(),
                    shards[0].series_len()
                )));
            }
            if shard.name() != shards[0].name() {
                return Err(Error::InvalidParameter(format!(
                    "shard {s} is a {} index (shard 0: {}) — shards must be one method",
                    shard.name(),
                    shards[0].name()
                )));
            }
        }
        Ok(Self { shards, map })
    }

    /// Partitions `data` under `scheme` into `num_shards` shards and
    /// builds one inner index per shard with `build` (called with the
    /// shard's dataset and its shard number, in shard order).
    ///
    /// # Errors
    /// Partitioning errors (see [`hydra_data::partition()`]) and any error
    /// `build` returns.
    pub fn from_partition<F>(
        data: &Dataset,
        scheme: PartitionScheme,
        num_shards: usize,
        mut build: F,
    ) -> Result<Self>
    where
        F: FnMut(&Dataset, usize) -> Result<Box<dyn AnnIndex>>,
    {
        let (map, shard_data) = partition(data, scheme, num_shards)?;
        let shards = shard_data
            .iter()
            .enumerate()
            .map(|(s, d)| build(d, s))
            .collect::<Result<Vec<_>>>()?;
        Self::new(shards, map)
    }

    /// The local↔global id map this view translates through.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.map.num_shards()
    }

    /// The per-shard inner indexes, in shard order.
    pub fn shards(&self) -> &[Box<dyn AnnIndex>] {
        &self.shards
    }

    /// Runs `f` once per shard — concurrently on scoped threads when there
    /// is more than one — and returns the results in shard order. A shard
    /// panic propagates to the caller (same policy as the workload
    /// runner's worker threads).
    fn fan_out<'s, T, F>(&'s self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&'s dyn AnnIndex) -> T + Sync,
    {
        if self.shards.len() == 1 {
            return vec![f(self.shards[0].as_ref())];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    let f = &f;
                    scope.spawn(move || f(shard.as_ref()))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
    }

    /// Translates one shard's answer to global ids in place.
    fn globalize(&self, shard: usize, neighbors: &mut [Neighbor]) {
        for n in neighbors {
            n.index = self.map.to_global(shard, n.index);
        }
    }

    /// Merges per-shard results for one query: global ids, merged top-k,
    /// summed stats. Any shard error fails the query (the error is
    /// per-query, mirroring `search_batch`'s failure contract).
    fn merge_query(
        &self,
        k: usize,
        per_shard: Vec<Result<SearchResult>>,
    ) -> Result<SearchResult> {
        let mut stats = QueryStats::default();
        let mut answers = Vec::with_capacity(per_shard.len());
        for (s, result) in per_shard.into_iter().enumerate() {
            let mut result = result?;
            self.globalize(s, &mut result.neighbors);
            stats.merge(&result.stats);
            answers.push(result.neighbors);
        }
        Ok(SearchResult::new(merge_top_k(k, &answers), stats))
    }
}

impl AnnIndex for ShardedIndex {
    /// The inner method's name — a sharded DSTree still reports "DSTree",
    /// so CSV rows and served listings stay comparable across shard
    /// counts.
    fn name(&self) -> &'static str {
        self.shards[0].name()
    }

    fn capabilities(&self) -> Capabilities {
        self.shards[0].capabilities()
    }

    fn num_series(&self) -> usize {
        self.map.total()
    }

    fn series_len(&self) -> usize {
        self.shards[0].series_len()
    }

    fn memory_footprint(&self) -> usize {
        self.shards.iter().map(|s| s.memory_footprint()).sum()
    }

    /// The component-wise sum over every shard's store, presenting the
    /// sharded collection as one logical store to the scrape path.
    /// `None` when the inner method holds no store at all.
    fn store_counters(&self) -> Option<hydra_core::StoreCounters> {
        let mut total = hydra_core::StoreCounters::default();
        let mut any = false;
        for shard in &self.shards {
            if let Some(c) = shard.store_counters() {
                total.merge(&c);
                any = true;
            }
        }
        any.then_some(total)
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        let per_shard = self.fan_out(|shard| shard.search(query, params));
        self.merge_query(params.k, per_shard)
    }

    fn search_batch(&self, queries: &[&[f32]], params: &SearchParams) -> Vec<Result<SearchResult>> {
        // One search_batch call per shard, so the inner indexes keep their
        // per-batch amortizations (ADC tables, scratch buffers); then a
        // per-query merge across shards.
        let mut per_shard: Vec<Vec<Option<Result<SearchResult>>>> = self
            .fan_out(|shard| shard.search_batch(queries, params))
            .into_iter()
            .map(|results| results.into_iter().map(Some).collect())
            .collect();
        (0..queries.len())
            .map(|q| {
                let results = per_shard
                    .iter_mut()
                    .enumerate()
                    .map(|(s, shard)| {
                        shard.get_mut(q).and_then(Option::take).unwrap_or_else(|| {
                            Err(Error::InvalidParameter(format!(
                                "shard {s} ({}) violated the search_batch contract: fewer \
                                 results than queries",
                                self.shards[s].name()
                            )))
                        })
                    })
                    .collect();
                self.merge_query(params.k, results)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::SearchMode;
    use hydra_data::generators::random_walk;
    use hydra_dstree::{DsTree, DsTreeConfig};

    /// A minimal exact scanner with deterministic answers and visible
    /// stats: one distance computation per stored series.
    struct Scan {
        data: Dataset,
    }

    impl AnnIndex for Scan {
        fn name(&self) -> &'static str {
            "scan"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                exact: true,
                ng_approximate: false,
                epsilon_approximate: false,
                delta_epsilon_approximate: false,
                disk_resident: false,
                streaming_insert: false,
                representation: hydra_core::Representation::Raw,
            }
        }
        fn num_series(&self) -> usize {
            self.data.len()
        }
        fn series_len(&self) -> usize {
            self.data.series_len()
        }
        fn memory_footprint(&self) -> usize {
            self.data.payload_bytes()
        }
        fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
            if query.len() != self.series_len() {
                return Err(Error::DimensionMismatch {
                    expected: self.series_len(),
                    found: query.len(),
                });
            }
            if !matches!(params.mode, SearchMode::Exact) {
                return Err(Error::UnsupportedMode("scan is exact-only".into()));
            }
            let mut top = hydra_core::TopK::new(params.k);
            let mut stats = QueryStats::default();
            for (i, series) in self.data.iter().enumerate() {
                stats.distance_computations += 1;
                top.push(Neighbor::new(i, hydra_core::euclidean(query, series)));
            }
            Ok(SearchResult::new(top.into_sorted(), stats))
        }
    }

    fn sharded_scan(data: &Dataset, scheme: PartitionScheme, s: usize) -> ShardedIndex {
        ShardedIndex::from_partition(data, scheme, s, |shard, _| {
            Ok(Box::new(Scan {
                data: shard.clone(),
            }) as Box<dyn AnnIndex>)
        })
        .unwrap()
    }

    #[test]
    fn sharded_exact_search_is_bit_identical_to_unsharded() {
        let data = random_walk(97, 16, 7);
        let whole = Scan { data: data.clone() };
        for scheme in [PartitionScheme::Contiguous, PartitionScheme::Strided] {
            for s in [1, 2, 5] {
                let sharded = sharded_scan(&data, scheme, s);
                assert_eq!(sharded.num_series(), 97);
                assert_eq!(sharded.series_len(), 16);
                assert_eq!(sharded.name(), "scan");
                for q in 0..5 {
                    let params = SearchParams::exact(10);
                    let a = whole.search(data.series(q), &params).unwrap();
                    let b = sharded.search(data.series(q), &params).unwrap();
                    assert_eq!(a.neighbors.len(), b.neighbors.len());
                    for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
                        assert_eq!(x.index, y.index, "{scheme:?} S={s} q={q}");
                        assert_eq!(
                            x.distance.to_bits(),
                            y.distance.to_bits(),
                            "{scheme:?} S={s} q={q}"
                        );
                    }
                    // Summed stats: every shard scanned its whole shard.
                    assert_eq!(b.stats.distance_computations, 97, "{scheme:?} S={s}");
                }
            }
        }
    }

    #[test]
    fn search_batch_matches_per_query_search_and_keeps_error_positions() {
        let data = random_walk(40, 8, 3);
        let sharded = sharded_scan(&data, PartitionScheme::Contiguous, 3);
        let good = data.series(0).to_vec();
        let bad = vec![0.0f32; 5]; // wrong dimensionality
        let queries: Vec<&[f32]> = vec![&good, &bad, &good];
        let params = SearchParams::exact(4);
        let results = sharded.search_batch(&queries, &params);
        assert_eq!(results.len(), 3);
        let single = sharded.search(&good, &params).unwrap();
        for i in [0usize, 2] {
            let r = results[i].as_ref().unwrap();
            assert_eq!(r.neighbors, single.neighbors);
            assert_eq!(r.stats, single.stats);
        }
        assert!(matches!(
            results[1],
            Err(Error::DimensionMismatch { expected: 8, found: 5 })
        ));
        // Unsupported mode fails every query, exactly like the inner index.
        let ng = sharded.search(&good, &SearchParams::ng(4, 2));
        assert!(matches!(ng, Err(Error::UnsupportedMode(_))));
    }

    #[test]
    fn sharded_dstree_delegates_metadata_and_sums_stats() {
        let data = random_walk(60, 16, 11);
        let config = DsTreeConfig::default();
        let sharded = ShardedIndex::from_partition(&data, PartitionScheme::Contiguous, 2, |d, _| {
            Ok(Box::new(DsTree::build(d, config).unwrap()) as Box<dyn AnnIndex>)
        })
        .unwrap();
        let whole = DsTree::build(&data, config).unwrap();
        assert_eq!(sharded.name(), whole.name());
        assert_eq!(sharded.capabilities(), whole.capabilities());
        assert_eq!(sharded.num_series(), 60);
        assert!(sharded.memory_footprint() > 0);
        let params = SearchParams::exact(5);
        let merged = sharded.search(data.series(1), &params).unwrap();
        let plain = whole.search(data.series(1), &params).unwrap();
        assert_eq!(merged.neighbors, plain.neighbors);
        // The merged stats are the sum of searching each shard directly.
        // Search a freshly built twin so per-index warm-up state (I/O
        // counters depend on what a previous search already paged in)
        // matches the cold searches the merged answer summed.
        let twin = ShardedIndex::from_partition(&data, PartitionScheme::Contiguous, 2, |d, _| {
            Ok(Box::new(DsTree::build(d, config).unwrap()) as Box<dyn AnnIndex>)
        })
        .unwrap();
        let mut manual = QueryStats::default();
        for shard in twin.shards() {
            manual.merge(&shard.search(data.series(1), &params).unwrap().stats);
        }
        assert_eq!(merged.stats, manual);
    }

    #[test]
    fn mismatched_shards_are_rejected() {
        let data = random_walk(30, 8, 1);
        let (map, shards) = partition(&data, PartitionScheme::Contiguous, 2).unwrap();
        // Wrong shard count.
        let one: Vec<Box<dyn AnnIndex>> = vec![Box::new(Scan {
            data: shards[0].clone(),
        })];
        assert!(ShardedIndex::new(one, map.clone()).is_err());
        // Swapped shards (sizes no longer match the map).
        let (map3, shards3) = partition(&data, PartitionScheme::Contiguous, 3).unwrap();
        let swapped: Vec<Box<dyn AnnIndex>> = vec![
            Box::new(Scan {
                data: shards3[0].clone(),
            }),
            Box::new(Scan {
                data: shards3[1].clone(),
            }),
        ];
        assert!(ShardedIndex::new(swapped, map.clone()).is_err());
        let _ = map3;
        // Mixed methods.
        let mixed: Vec<Box<dyn AnnIndex>> = vec![
            Box::new(Scan {
                data: shards[0].clone(),
            }),
            Box::new(DsTree::build(&shards[1], DsTreeConfig::default()).unwrap()),
        ];
        assert!(ShardedIndex::new(mixed, map).is_err());
    }
}
