//! Brute-force exact k-NN ground truth.
//!
//! Accuracy metrics (recall, MAP, MRE) compare approximate answers against
//! the exact neighbors. The exact answers are computed by a parallel linear
//! scan — the only method guaranteed correct independently of any index
//! implementation, which is why the harness uses it as the yardstick.

use hydra_core::{Dataset, Neighbor, TopK};

use crate::queries::QueryWorkload;

/// Exact k-NN answers for a whole workload.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// `answers[q]` holds the exact k nearest neighbors of query `q`,
    /// sorted by increasing distance.
    pub answers: Vec<Vec<Neighbor>>,
    /// The `k` the ground truth was computed for.
    pub k: usize,
}

impl GroundTruth {
    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// Whether the ground truth is empty.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }
}

/// Exact k nearest neighbors of `query` in `dataset` by linear scan.
pub fn exact_knn(dataset: &Dataset, query: &[f32], k: usize) -> Vec<Neighbor> {
    let mut top = TopK::new(k.max(1));
    for (i, s) in dataset.iter().enumerate() {
        let bsf = top.kth_distance();
        if let Some(d) = hydra_core::euclidean_early_abandon(query, s, bsf) {
            top.push(Neighbor::new(i, d));
        }
    }
    top.into_sorted()
}

/// Exact k-NN answers for a batch of queries, computed with one scan thread
/// per available core (scoped threads, no unsafe).
///
/// This is the shared brute-force scan behind [`ground_truth`] and behind
/// any `AnnIndex::search_batch` implementation that answers a batch by
/// parallel linear scan. Results are in query order and identical to calling
/// [`exact_knn`] per query, whatever the thread count.
pub fn exact_knn_batch(dataset: &Dataset, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
    let num_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(queries.len().max(1));
    let mut answers: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];

    if num_threads <= 1 || queries.len() < 4 {
        for (q, query) in queries.iter().enumerate() {
            answers[q] = exact_knn(dataset, query, k);
        }
        return answers;
    }

    let chunk = queries.len().div_ceil(num_threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, chunk_queries) in queries.chunks(chunk).enumerate() {
            let handle = scope.spawn(move || {
                let mut local = Vec::with_capacity(chunk_queries.len());
                for query in chunk_queries {
                    local.push(exact_knn(dataset, query, k));
                }
                (t, local)
            });
            handles.push(handle);
        }
        for handle in handles {
            let (t, local) = handle.join().expect("brute-force scan worker panicked");
            for (i, ans) in local.into_iter().enumerate() {
                answers[t * chunk + i] = ans;
            }
        }
    });

    answers
}

/// Exact k-NN ground truth for every query of a workload (the parallel
/// [`exact_knn_batch`] scan over the workload's queries).
pub fn ground_truth(dataset: &Dataset, workload: &QueryWorkload, k: usize) -> GroundTruth {
    let queries: Vec<&[f32]> = workload.iter().collect();
    let answers = exact_knn_batch(dataset, &queries, k);
    GroundTruth { answers, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_walk;
    use crate::queries::noisy_queries;

    #[test]
    fn exact_knn_finds_the_query_itself() {
        let d = random_walk(100, 32, 1);
        let gt = exact_knn(&d, d.series(42), 3);
        assert_eq!(gt[0].index, 42);
        assert!(gt[0].distance.abs() < 1e-5);
        assert_eq!(gt.len(), 3);
        // Sorted by distance.
        assert!(gt[0].distance <= gt[1].distance);
        assert!(gt[1].distance <= gt[2].distance);
    }

    #[test]
    fn parallel_ground_truth_matches_sequential() {
        let d = random_walk(300, 32, 2);
        let w = noisy_queries(&d, 16, &[0.1, 0.5], 3);
        let gt = ground_truth(&d, &w, 5);
        assert_eq!(gt.len(), 16);
        assert_eq!(gt.k, 5);
        assert!(!gt.is_empty());
        for (q, query) in w.iter().enumerate() {
            let seq = exact_knn(&d, query, 5);
            assert_eq!(gt.answers[q].len(), 5);
            for (a, b) in gt.answers[q].iter().zip(seq.iter()) {
                assert_eq!(a.index, b.index);
                assert!((a.distance - b.distance).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn exact_knn_batch_matches_per_query_scan() {
        let d = random_walk(200, 16, 6);
        let w = noisy_queries(&d, 9, &[0.2], 7);
        let refs: Vec<&[f32]> = w.iter().collect();
        let batch = exact_knn_batch(&d, &refs, 4);
        assert_eq!(batch.len(), 9);
        for (q, ans) in refs.iter().zip(batch.iter()) {
            let seq = exact_knn(&d, q, 4);
            assert_eq!(ans.len(), seq.len());
            for (a, b) in ans.iter().zip(seq.iter()) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
        assert!(exact_knn_batch(&d, &[], 4).is_empty());
    }

    #[test]
    fn k_larger_than_dataset_returns_all() {
        let d = random_walk(5, 16, 4);
        let gt = exact_knn(&d, d.series(0), 10);
        assert_eq!(gt.len(), 5);
    }
}
