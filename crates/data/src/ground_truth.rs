//! Brute-force exact k-NN ground truth.
//!
//! Accuracy metrics (recall, MAP, MRE) compare approximate answers against
//! the exact neighbors. The exact answers are computed by a parallel linear
//! scan — the only method guaranteed correct independently of any index
//! implementation, which is why the harness uses it as the yardstick.

use std::path::{Path, PathBuf};

use hydra_core::{Dataset, Neighbor, TopK};
use hydra_persist::{
    fingerprint_dataset, Fingerprint, PersistError, Section, SnapshotReader, SnapshotWriter,
};

use crate::queries::QueryWorkload;

/// Exact k-NN answers for a whole workload.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// `answers[q]` holds the exact k nearest neighbors of query `q`,
    /// sorted by increasing distance.
    pub answers: Vec<Vec<Neighbor>>,
    /// The `k` the ground truth was computed for.
    pub k: usize,
}

impl GroundTruth {
    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// Whether the ground truth is empty.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }
}

/// Exact k nearest neighbors of `query` in `dataset` by linear scan.
pub fn exact_knn(dataset: &Dataset, query: &[f32], k: usize) -> Vec<Neighbor> {
    let mut top = TopK::new(k.max(1));
    for (i, s) in dataset.iter().enumerate() {
        let bsf = top.kth_distance();
        if let Some(d) = hydra_core::euclidean_early_abandon(query, s, bsf) {
            top.push(Neighbor::new(i, d));
        }
    }
    top.into_sorted()
}

/// Exact k-NN answers for a batch of queries, computed with one scan thread
/// per available core (scoped threads, no unsafe).
///
/// This is the shared brute-force scan behind [`ground_truth`] and behind
/// any `AnnIndex::search_batch` implementation that answers a batch by
/// parallel linear scan. Results are in query order and identical to calling
/// [`exact_knn`] per query, whatever the thread count.
pub fn exact_knn_batch(dataset: &Dataset, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
    let num_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(queries.len().max(1));
    let mut answers: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];

    if num_threads <= 1 || queries.len() < 4 {
        for (q, query) in queries.iter().enumerate() {
            answers[q] = exact_knn(dataset, query, k);
        }
        return answers;
    }

    let chunk = queries.len().div_ceil(num_threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, chunk_queries) in queries.chunks(chunk).enumerate() {
            let handle = scope.spawn(move || {
                let mut local = Vec::with_capacity(chunk_queries.len());
                for query in chunk_queries {
                    local.push(exact_knn(dataset, query, k));
                }
                (t, local)
            });
            handles.push(handle);
        }
        for handle in handles {
            let (t, local) = handle.join().expect("brute-force scan worker panicked");
            for (i, ans) in local.into_iter().enumerate() {
                answers[t * chunk + i] = ans;
            }
        }
    });

    answers
}

/// Exact k-NN ground truth for every query of a workload (the parallel
/// [`exact_knn_batch`] scan over the workload's queries).
pub fn ground_truth(dataset: &Dataset, workload: &QueryWorkload, k: usize) -> GroundTruth {
    let queries: Vec<&[f32]> = workload.iter().collect();
    let answers = exact_knn_batch(dataset, &queries, k);
    GroundTruth { answers, k }
}

/// Kind tag of ground-truth cache snapshots.
pub const GROUND_TRUTH_KIND: &str = "ground-truth";

/// Fingerprint of one exact-answer computation: the dataset content, the
/// query content (series and noise levels) and `k`. Any change to any of
/// them changes the cache key, so a cache can never serve answers for the
/// wrong question.
pub fn ground_truth_fingerprint(dataset: &Dataset, workload: &QueryWorkload, k: usize) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(GROUND_TRUTH_KIND);
    f.push_u64(fingerprint_dataset(dataset));
    f.push_u64(fingerprint_dataset(&workload.queries));
    f.push_f32s(&workload.noise_levels);
    f.push_usize(k);
    f.finish()
}

/// The cache file a given computation maps to inside `cache_dir`.
pub fn ground_truth_cache_file(
    cache_dir: &Path,
    dataset: &Dataset,
    workload: &QueryWorkload,
    k: usize,
) -> PathBuf {
    cache_dir.join(format!(
        "gt-{:016x}.snap",
        ground_truth_fingerprint(dataset, workload, k)
    ))
}

/// [`ground_truth`] with an on-disk cache: answers are served from
/// `cache_dir` when a snapshot keyed by the dataset/query/`k` fingerprint
/// exists, and computed-then-cached otherwise.
///
/// Returns the ground truth and whether it was a cache *hit*. The cache is
/// strictly an optimization and this function never fails: a missing,
/// stale (different fingerprint) or damaged cache file counts as a miss
/// and is overwritten with a fresh computation, and an *unwritable* cache
/// only forfeits the caching (with a warning on stderr) — the
/// already-computed answers are returned either way, never thrown away and
/// recomputed.
pub fn ground_truth_cached(
    dataset: &Dataset,
    workload: &QueryWorkload,
    k: usize,
    cache_dir: &Path,
) -> (GroundTruth, bool) {
    let path = ground_truth_cache_file(cache_dir, dataset, workload, k);
    let fingerprint = ground_truth_fingerprint(dataset, workload, k);
    if let Ok(truth) = read_ground_truth(&path, fingerprint, dataset.len(), workload.len(), k) {
        return (truth, true);
    }

    let truth = ground_truth(dataset, workload, k);
    let mut w = SnapshotWriter::new(GROUND_TRUTH_KIND, fingerprint);
    let mut s = Section::new();
    s.put_usize(truth.k);
    s.put_usize(truth.answers.len());
    for answer in &truth.answers {
        s.put_usize(answer.len());
        for n in answer {
            s.put_usize(n.index);
            s.put_f32(n.distance);
        }
    }
    w.push(s);
    if let Err(e) = w.write_to(&path) {
        eprintln!(
            "warning: cannot write ground-truth cache {}: {e}",
            path.display()
        );
    }
    (truth, false)
}

/// Reads and fully validates a cached ground truth; any defect is an error
/// (which [`ground_truth_cached`] treats as a miss).
fn read_ground_truth(
    path: &Path,
    fingerprint: u64,
    dataset_len: usize,
    num_queries: usize,
    k: usize,
) -> hydra_persist::Result<GroundTruth> {
    let mut r = SnapshotReader::open(path)?;
    r.expect_kind(GROUND_TRUTH_KIND)?;
    r.expect_fingerprint(fingerprint)?;
    let mut s = r.next_section()?;
    let stored_k = s.get_usize()?;
    let count = s.get_usize()?;
    if stored_k != k || count != num_queries {
        return Err(PersistError::Corrupt(
            "cached ground truth does not match the workload shape".into(),
        ));
    }
    let mut answers = Vec::with_capacity(count);
    for _ in 0..count {
        let len = s.get_usize()?;
        if len > dataset_len.min(k.max(1)) {
            return Err(PersistError::Corrupt(
                "cached answer longer than the dataset allows".into(),
            ));
        }
        let mut answer = Vec::with_capacity(len);
        for _ in 0..len {
            let index = s.get_usize()?;
            if index >= dataset_len {
                return Err(PersistError::Corrupt(format!(
                    "cached neighbor id {index} out of range"
                )));
            }
            answer.push(Neighbor::new(index, s.get_f32()?));
        }
        answers.push(answer);
    }
    Ok(GroundTruth { answers, k })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_walk;
    use crate::queries::noisy_queries;

    #[test]
    fn exact_knn_finds_the_query_itself() {
        let d = random_walk(100, 32, 1);
        let gt = exact_knn(&d, d.series(42), 3);
        assert_eq!(gt[0].index, 42);
        assert!(gt[0].distance.abs() < 1e-5);
        assert_eq!(gt.len(), 3);
        // Sorted by distance.
        assert!(gt[0].distance <= gt[1].distance);
        assert!(gt[1].distance <= gt[2].distance);
    }

    #[test]
    fn parallel_ground_truth_matches_sequential() {
        let d = random_walk(300, 32, 2);
        let w = noisy_queries(&d, 16, &[0.1, 0.5], 3);
        let gt = ground_truth(&d, &w, 5);
        assert_eq!(gt.len(), 16);
        assert_eq!(gt.k, 5);
        assert!(!gt.is_empty());
        for (q, query) in w.iter().enumerate() {
            let seq = exact_knn(&d, query, 5);
            assert_eq!(gt.answers[q].len(), 5);
            for (a, b) in gt.answers[q].iter().zip(seq.iter()) {
                assert_eq!(a.index, b.index);
                assert!((a.distance - b.distance).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn exact_knn_batch_matches_per_query_scan() {
        let d = random_walk(200, 16, 6);
        let w = noisy_queries(&d, 9, &[0.2], 7);
        let refs: Vec<&[f32]> = w.iter().collect();
        let batch = exact_knn_batch(&d, &refs, 4);
        assert_eq!(batch.len(), 9);
        for (q, ans) in refs.iter().zip(batch.iter()) {
            let seq = exact_knn(&d, q, 4);
            assert_eq!(ans.len(), seq.len());
            for (a, b) in ans.iter().zip(seq.iter()) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
        assert!(exact_knn_batch(&d, &[], 4).is_empty());
    }

    #[test]
    fn k_larger_than_dataset_returns_all() {
        let d = random_walk(5, 16, 4);
        let gt = exact_knn(&d, d.series(0), 10);
        assert_eq!(gt.len(), 5);
    }

    fn temp_cache_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hydra-gt-cache-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn ground_truth_cache_misses_then_hits_bitwise_identically() {
        let d = random_walk(200, 16, 11);
        let w = noisy_queries(&d, 6, &[0.1], 12);
        let dir = temp_cache_dir("hit-miss");

        let (first, hit1) = ground_truth_cached(&d, &w, 5, &dir);
        assert!(!hit1, "an empty cache must miss");
        let (second, hit2) = ground_truth_cached(&d, &w, 5, &dir);
        assert!(hit2, "the second identical call must hit");
        assert_eq!(first.k, second.k);
        assert_eq!(first.answers.len(), second.answers.len());
        for (a, b) in first.answers.iter().zip(second.answers.iter()) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.index, y.index);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
        // And both must equal the uncached computation.
        let fresh = ground_truth(&d, &w, 5);
        for (a, b) in fresh.answers.iter().zip(second.answers.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.index, y.index);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ground_truth_cache_key_separates_dataset_queries_and_k() {
        let d = random_walk(120, 16, 21);
        let d2 = random_walk(120, 16, 22);
        let w = noisy_queries(&d, 4, &[0.1], 23);
        let w2 = noisy_queries(&d, 4, &[0.2], 24);
        let dir = std::path::Path::new("/tmp");
        let base = ground_truth_cache_file(dir, &d, &w, 5);
        assert_ne!(base, ground_truth_cache_file(dir, &d2, &w, 5));
        assert_ne!(base, ground_truth_cache_file(dir, &d, &w2, 5));
        assert_ne!(base, ground_truth_cache_file(dir, &d, &w, 6));
        assert_eq!(base, ground_truth_cache_file(dir, &d, &w, 5));
    }

    #[test]
    fn corrupted_cache_degrades_to_a_recomputing_miss() {
        let d = random_walk(150, 16, 31);
        let w = noisy_queries(&d, 5, &[0.1], 32);
        let dir = temp_cache_dir("corrupt");
        let (_, hit) = ground_truth_cached(&d, &w, 4, &dir);
        assert!(!hit);
        // Damage the cached file: flip a payload byte.
        let path = ground_truth_cache_file(&dir, &d, &w, 4);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (truth, hit) = ground_truth_cached(&d, &w, 4, &dir);
        assert!(!hit, "a damaged cache must be a miss, not an error");
        // The rewritten cache hits again and the answers are correct.
        let (again, hit) = ground_truth_cached(&d, &w, 4, &dir);
        assert!(hit);
        let fresh = ground_truth(&d, &w, 4);
        for (a, b) in fresh.answers.iter().zip(truth.answers.iter().chain(again.answers.iter())) {
            assert_eq!(a[0].index, b[0].index);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
