//! Query workload generation.
//!
//! The paper's workloads contain 100 queries. Synthetic queries come from
//! the same generator as the dataset (with a different seed); for real
//! datasets, queries are produced by adding progressively larger amounts of
//! noise to stored series, producing a controlled range of difficulties
//! (following Zoumpatianos et al., "Generating data series query
//! workloads").

use hydra_core::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A set of query series together with the noise level each was generated
/// with (0 for queries drawn directly from the data distribution).
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// The query series.
    pub queries: Dataset,
    /// Noise level used for each query (same order as `queries`).
    pub noise_levels: Vec<f32>,
}

impl QueryWorkload {
    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates over the query series.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> + '_ {
        self.queries.iter()
    }
}

fn normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Builds a workload of `count` queries by perturbing randomly chosen series
/// of `dataset` with Gaussian noise.
///
/// Noise levels are spread uniformly across `noise_levels` (e.g.,
/// `[0.0, 0.1, 0.25, 0.5]`), so the workload mixes easy and hard queries as
/// in the paper. The noise standard deviation for a query is
/// `level * std(series)`.
pub fn noisy_queries(
    dataset: &Dataset,
    count: usize,
    noise_levels: &[f32],
    seed: u64,
) -> QueryWorkload {
    assert!(!dataset.is_empty(), "cannot derive queries from an empty dataset");
    let levels = if noise_levels.is_empty() {
        &[0.1f32][..]
    } else {
        noise_levels
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let len = dataset.series_len();
    let mut queries = Dataset::with_capacity(len, count).expect("positive length");
    let mut used_levels = Vec::with_capacity(count);
    let mut buf = vec![0.0f32; len];
    for q in 0..count {
        let source = rng.gen_range(0..dataset.len());
        let level = levels[q % levels.len()];
        let series = dataset.series(source);
        let mean: f32 = series.iter().sum::<f32>() / len as f32;
        let std: f32 = (series.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / len as f32)
            .sqrt()
            .max(f32::EPSILON);
        for (dst, &src) in buf.iter_mut().zip(series.iter()) {
            *dst = src + normal(&mut rng) * level * std;
        }
        queries.push(&buf).expect("length is fixed");
        used_levels.push(level);
    }
    QueryWorkload {
        queries,
        noise_levels: used_levels,
    }
}

/// Builds a workload of `count` queries drawn from the same generator as the
/// dataset family (used for the synthetic Rand datasets, where the paper
/// generates queries with a different seed).
pub fn sample_queries(
    kind: crate::generators::DatasetKind,
    count: usize,
    series_len: usize,
    seed: u64,
) -> QueryWorkload {
    let queries = kind.generate(count, series_len, seed);
    QueryWorkload {
        noise_levels: vec![0.0; queries.len()],
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_walk, DatasetKind};

    #[test]
    fn noisy_queries_have_expected_shape_and_levels() {
        let d = random_walk(100, 64, 1);
        let w = noisy_queries(&d, 10, &[0.0, 0.5], 2);
        assert_eq!(w.len(), 10);
        assert!(!w.is_empty());
        assert_eq!(w.queries.series_len(), 64);
        assert_eq!(w.noise_levels.len(), 10);
        // Levels alternate 0.0, 0.5, 0.0, ...
        assert_eq!(w.noise_levels[0], 0.0);
        assert_eq!(w.noise_levels[1], 0.5);
        assert_eq!(w.iter().count(), 10);
    }

    #[test]
    fn zero_noise_queries_match_source_series_exactly() {
        let d = random_walk(50, 32, 3);
        let w = noisy_queries(&d, 20, &[0.0], 4);
        // Every query must be identical to some stored series.
        for q in w.iter() {
            let found = d.iter().any(|s| s == q);
            assert!(found, "zero-noise query should equal a dataset series");
        }
    }

    #[test]
    fn higher_noise_means_larger_distance_to_source() {
        let d = random_walk(50, 128, 5);
        let low = noisy_queries(&d, 30, &[0.05], 6);
        let high = noisy_queries(&d, 30, &[1.0], 6);
        let nn_dist = |w: &QueryWorkload| -> f32 {
            w.iter()
                .map(|q| {
                    d.iter()
                        .map(|s| hydra_core::euclidean(q, s))
                        .fold(f32::INFINITY, f32::min)
                })
                .sum::<f32>()
                / w.len() as f32
        };
        assert!(nn_dist(&low) < nn_dist(&high));
    }

    #[test]
    fn sample_queries_uses_generator() {
        let w = sample_queries(DatasetKind::RandomWalk, 5, 32, 77);
        assert_eq!(w.len(), 5);
        assert!(w.noise_levels.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn workload_is_deterministic() {
        let d = random_walk(40, 32, 9);
        let a = noisy_queries(&d, 10, &[0.1, 0.3], 42);
        let b = noisy_queries(&d, 10, &[0.1, 0.3], 42);
        assert_eq!(a.queries, b.queries);
    }
}
