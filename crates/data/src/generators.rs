//! Synthetic dataset generators.

use hydra_core::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples a standard normal value (Box–Muller).
fn normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// The dataset families used across the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Random-walk series (the paper's synthetic "Rand" datasets).
    RandomWalk,
    /// SIFT-descriptor-like vectors (non-negative, clustered).
    SiftLike,
    /// Deep-embedding-like vectors (L2-normalized Gaussian mixture).
    DeepLike,
    /// Seismograph-like series (noise with transient bursts).
    SeismicLike,
    /// MRI-like series (smooth, low frequency) standing in for SALD.
    MriLike,
}

impl DatasetKind {
    /// Name used in reports and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::RandomWalk => "rand",
            DatasetKind::SiftLike => "sift-like",
            DatasetKind::DeepLike => "deep-like",
            DatasetKind::SeismicLike => "seismic-like",
            DatasetKind::MriLike => "sald-like",
        }
    }

    /// Generates a dataset of this kind.
    pub fn generate(&self, n: usize, len: usize, seed: u64) -> Dataset {
        match self {
            DatasetKind::RandomWalk => random_walk(n, len, seed),
            DatasetKind::SiftLike => sift_like(n, len, seed),
            DatasetKind::DeepLike => deep_like(n, len, seed),
            DatasetKind::SeismicLike => seismic_like(n, len, seed),
            DatasetKind::MriLike => mri_like(n, len, seed),
        }
    }

    /// All dataset kinds, in the order the paper discusses them.
    pub fn all() -> [DatasetKind; 5] {
        [
            DatasetKind::RandomWalk,
            DatasetKind::SiftLike,
            DatasetKind::DeepLike,
            DatasetKind::SeismicLike,
            DatasetKind::MriLike,
        ]
    }
}

/// Convenience bundle describing a dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Dataset family.
    pub kind: DatasetKind,
    /// Number of series.
    pub num_series: usize,
    /// Length of each series.
    pub series_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Generates the configured dataset.
    pub fn generate(&self) -> Dataset {
        self.kind.generate(self.num_series, self.series_len, self.seed)
    }
}

/// Random-walk series: cumulative sums of N(0, 1) steps, z-normalized.
///
/// This is exactly the paper's synthetic data model ("generated as
/// random-walks using a summing process with steps following a Gaussian
/// distribution (0,1)"), which also models financial time series.
pub fn random_walk(n: usize, len: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::with_capacity(len.max(1), n).expect("positive length");
    let mut series = vec![0.0f32; len.max(1)];
    for _ in 0..n {
        let mut acc = 0.0f32;
        for v in series.iter_mut() {
            acc += normal(&mut rng);
            *v = acc;
        }
        hydra_core::znormalize(&mut series);
        d.push(&series).expect("length is fixed");
    }
    d
}

/// SIFT-like vectors: non-negative, sparse-ish, clustered histograms.
///
/// SIFT descriptors are 128-dimensional gradient histograms: non-negative,
/// heavy-tailed per-dimension distributions with strong cluster structure.
/// The generator draws cluster centers with exponential coordinates and
/// perturbs them with truncated Gaussian noise.
pub fn sift_like(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = dim.max(1);
    let num_clusters = (n / 50).clamp(4, 256);
    let centers: Vec<Vec<f32>> = (0..num_clusters)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    // Exponential(λ=1/30): heavy-tailed non-negative values,
                    // scaled to the 0..255-ish range of SIFT components.
                    let u: f32 = rng.gen_range(f32::EPSILON..1.0);
                    (-u.ln()) * 30.0
                })
                .collect()
        })
        .collect();
    let mut d = Dataset::with_capacity(dim, n).expect("positive length");
    let mut v = vec![0.0f32; dim];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..num_clusters)];
        for (j, x) in v.iter_mut().enumerate() {
            *x = (c[j] + normal(&mut rng) * 8.0).max(0.0);
        }
        d.push(&v).expect("length is fixed");
    }
    d
}

/// Deep-embedding-like vectors: an L2-normalized Gaussian mixture with
/// anisotropic (correlated) within-cluster noise, mimicking the last-layer
/// CNN features of the Deep1B dataset.
pub fn deep_like(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = dim.max(1);
    let num_clusters = (n / 40).clamp(4, 512);
    let centers: Vec<Vec<f32>> = (0..num_clusters)
        .map(|_| (0..dim).map(|_| normal(&mut rng)).collect())
        .collect();
    // Per-dimension noise scales decay with the dimension index, giving the
    // anisotropy (a few dominant directions) typical of learned embeddings.
    let scales: Vec<f32> = (0..dim)
        .map(|j| 0.5 / (1.0 + j as f32 / 8.0))
        .collect();
    let mut d = Dataset::with_capacity(dim, n).expect("positive length");
    let mut v = vec![0.0f32; dim];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..num_clusters)];
        let mut norm = 0.0f32;
        for (j, x) in v.iter_mut().enumerate() {
            *x = c[j] + normal(&mut rng) * scales[j];
            norm += *x * *x;
        }
        let norm = norm.sqrt().max(f32::EPSILON);
        v.iter_mut().for_each(|x| *x /= norm);
        d.push(&v).expect("length is fixed");
    }
    d
}

/// Seismic-like series: low-amplitude background noise with occasional
/// high-amplitude transient bursts (events), z-normalized.
pub fn seismic_like(n: usize, len: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = len.max(1);
    let mut d = Dataset::with_capacity(len, n).expect("positive length");
    let mut series = vec![0.0f32; len];
    for _ in 0..n {
        // Background: AR(1)-style correlated noise.
        let mut prev = 0.0f32;
        for v in series.iter_mut() {
            prev = 0.6 * prev + normal(&mut rng) * 0.2;
            *v = prev;
        }
        // 1-3 bursts: decaying oscillation starting at a random onset.
        let bursts = rng.gen_range(1..=3);
        for _ in 0..bursts {
            let onset = rng.gen_range(0..len);
            let amp = rng.gen_range(2.0..8.0f32);
            let freq = rng.gen_range(0.1..0.6f32);
            for (t, v) in series.iter_mut().enumerate().skip(onset) {
                let dt = (t - onset) as f32;
                *v += amp * (-dt / 40.0).exp() * (freq * dt).sin();
            }
        }
        hydra_core::znormalize(&mut series);
        d.push(&series).expect("length is fixed");
    }
    d
}

/// MRI-like (SALD) series: smooth, low-frequency signals composed of a
/// handful of slow sinusoids plus small measurement noise, z-normalized.
pub fn mri_like(n: usize, len: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = len.max(1);
    let mut d = Dataset::with_capacity(len, n).expect("positive length");
    let mut series = vec![0.0f32; len];
    for _ in 0..n {
        let components = rng.gen_range(2..=4);
        let params: Vec<(f32, f32, f32)> = (0..components)
            .map(|_| {
                (
                    rng.gen_range(0.5..2.0f32),                       // amplitude
                    rng.gen_range(0.005..0.05f32),                    // frequency
                    rng.gen_range(0.0..2.0 * std::f32::consts::PI),   // phase
                )
            })
            .collect();
        for (t, v) in series.iter_mut().enumerate() {
            let mut x = 0.0f32;
            for &(a, f, p) in &params {
                x += a * (f * t as f32 + p).sin();
            }
            *v = x + normal(&mut rng) * 0.05;
        }
        hydra_core::znormalize(&mut series);
        d.push(&series).expect("length is fixed");
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_shape() {
        for kind in DatasetKind::all() {
            let d = kind.generate(50, 64, 7);
            assert_eq!(d.len(), 50, "{}", kind.name());
            assert_eq!(d.series_len(), 64);
            assert!(d.iter().all(|s| s.iter().all(|v| v.is_finite())));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for kind in DatasetKind::all() {
            let a = kind.generate(20, 32, 123);
            let b = kind.generate(20, 32, 123);
            let c = kind.generate(20, 32, 124);
            assert_eq!(a, b, "{}", kind.name());
            assert_ne!(a, c, "{}", kind.name());
        }
    }

    #[test]
    fn random_walk_is_znormalized() {
        let d = random_walk(10, 128, 3);
        for s in d.iter() {
            let mean: f32 = s.iter().sum::<f32>() / 128.0;
            let var: f32 = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 128.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn sift_like_is_non_negative_and_clustered() {
        let d = sift_like(300, 32, 9);
        assert!(d.iter().all(|s| s.iter().all(|&v| v >= 0.0)));
        // Clustering: the average NN distance should be much smaller than
        // the average pairwise distance.
        let mut nn_sum = 0.0f32;
        let mut all_sum = 0.0f32;
        let mut all_cnt = 0u32;
        for i in 0..30 {
            let mut best = f32::INFINITY;
            for j in 0..300 {
                if i == j {
                    continue;
                }
                let dist = hydra_core::euclidean(d.series(i), d.series(j));
                best = best.min(dist);
                all_sum += dist;
                all_cnt += 1;
            }
            nn_sum += best;
        }
        assert!(nn_sum / 30.0 < 0.8 * all_sum / all_cnt as f32);
    }

    #[test]
    fn deep_like_is_unit_norm() {
        let d = deep_like(50, 24, 11);
        for s in d.iter() {
            let norm: f32 = s.iter().map(|v| v * v).sum::<f32>();
            assert!((norm - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn mri_like_is_smoother_than_seismic() {
        // Smoothness proxy: mean squared first difference (both families are
        // z-normalized so the comparison is scale free).
        let roughness = |d: &Dataset| -> f32 {
            let mut acc = 0.0;
            for s in d.iter() {
                for w in s.windows(2) {
                    acc += (w[1] - w[0]) * (w[1] - w[0]);
                }
            }
            acc / d.len() as f32
        };
        let smooth = mri_like(30, 128, 5);
        let rough = seismic_like(30, 128, 5);
        assert!(roughness(&smooth) < roughness(&rough));
    }

    #[test]
    fn generator_config_roundtrip() {
        let cfg = GeneratorConfig {
            kind: DatasetKind::RandomWalk,
            num_series: 12,
            series_len: 16,
            seed: 1,
        };
        let d = cfg.generate();
        assert_eq!(d.len(), 12);
        assert_eq!(d.series_len(), 16);
        assert_eq!(DatasetKind::RandomWalk.name(), "rand");
    }
}
