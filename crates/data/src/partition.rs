//! Dataset partitioning for sharded (scale-out) search.
//!
//! A [`ShardMap`] describes how one dataset of `total` series is split into
//! `S` shards and translates between **global** ids (positions in the
//! unsharded dataset) and **local** ids (positions inside one shard). Two
//! schemes are supported:
//!
//! * [`PartitionScheme::Contiguous`] — shard `s` holds one consecutive
//!   range of the dataset; ranges differ in length by at most one series
//!   (the first `total % S` shards get the extra one). This is the layout
//!   `fig* --save-index --shards S` writes, one bootable snapshot
//!   directory per shard, because consecutive ranges keep each shard's
//!   raw-series file sequential.
//! * [`PartitionScheme::Strided`] — shard `s` holds global ids
//!   `{s, s + S, s + 2S, ...}`. Striding spreads any ordering structure in
//!   the dataset (e.g. sorted inserts) evenly across shards.
//!
//! Both maps are **stable**: they are pure functions of `(scheme, S,
//! total)`, so a saver and a later loader (or a router in front of S
//! workers) agree on every id translation by construction — nothing about
//! the mapping needs to be persisted.

use hydra_core::{Dataset, Error, Result};

/// How global ids are dealt out to shards (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionScheme {
    /// Shard `s` holds one consecutive global-id range.
    Contiguous,
    /// Shard `s` holds global ids `{s, s + S, s + 2S, ...}`.
    Strided,
}

impl PartitionScheme {
    /// A short label ("contiguous" / "strided") for CLIs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PartitionScheme::Contiguous => "contiguous",
            PartitionScheme::Strided => "strided",
        }
    }

    /// Parses a label produced by [`PartitionScheme::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "contiguous" => Some(PartitionScheme::Contiguous),
            "strided" => Some(PartitionScheme::Strided),
            _ => None,
        }
    }
}

/// A stable local↔global id map for one partitioning of `total` series
/// into shards.
///
/// For [`PartitionScheme::Contiguous`] the shard lengths may be arbitrary
/// (see [`ShardMap::contiguous_from_lens`] — a router derives them from
/// what each worker actually serves); [`ShardMap::new`] always produces
/// the canonical even split described in the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    scheme: PartitionScheme,
    /// Number of series per shard.
    lens: Vec<usize>,
    /// Per-shard global-id offsets (prefix sums of `lens`); only meaningful
    /// for the contiguous scheme.
    offsets: Vec<usize>,
    total: usize,
}

impl ShardMap {
    /// The canonical even split of `total` series into `num_shards` shards
    /// under `scheme`.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] if `num_shards` is zero or exceeds
    /// `total` (an empty shard cannot hold an index).
    pub fn new(scheme: PartitionScheme, num_shards: usize, total: usize) -> Result<Self> {
        if num_shards == 0 {
            return Err(Error::InvalidParameter("shard count must be positive".into()));
        }
        if num_shards > total {
            return Err(Error::InvalidParameter(format!(
                "cannot split {total} series into {num_shards} non-empty shards"
            )));
        }
        let lens: Vec<usize> = (0..num_shards)
            .map(|s| match scheme {
                PartitionScheme::Contiguous => total / num_shards + usize::from(s < total % num_shards),
                PartitionScheme::Strided => (total - s).div_ceil(num_shards),
            })
            .collect();
        Ok(Self::from_parts(scheme, lens, total))
    }

    /// A contiguous map over explicitly given shard lengths — how a router
    /// reconstructs the id map from the series counts its workers report.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] if `lens` is empty or any shard is empty.
    pub fn contiguous_from_lens(lens: &[usize]) -> Result<Self> {
        if lens.is_empty() {
            return Err(Error::InvalidParameter("shard count must be positive".into()));
        }
        if let Some(s) = lens.iter().position(|&l| l == 0) {
            return Err(Error::InvalidParameter(format!("shard {s} is empty")));
        }
        let total = lens.iter().sum();
        Ok(Self::from_parts(PartitionScheme::Contiguous, lens.to_vec(), total))
    }

    /// Reconstructs the map of `scheme` from per-shard lengths, validating
    /// for the strided scheme that the lengths match the canonical deal
    /// (strided local→global translation is only defined for it).
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] if the lengths are unusable (empty
    /// shard, or strided lengths that no canonical deal produces).
    pub fn from_lens(scheme: PartitionScheme, lens: &[usize]) -> Result<Self> {
        match scheme {
            PartitionScheme::Contiguous => Self::contiguous_from_lens(lens),
            PartitionScheme::Strided => {
                let total: usize = lens.iter().sum();
                let canonical = Self::new(PartitionScheme::Strided, lens.len(), total)?;
                if canonical.lens != lens {
                    return Err(Error::InvalidParameter(format!(
                        "shard lengths {lens:?} do not match a strided deal of {total} series \
                         over {} shards (expected {:?})",
                        lens.len(),
                        canonical.lens
                    )));
                }
                Ok(canonical)
            }
        }
    }

    fn from_parts(scheme: PartitionScheme, lens: Vec<usize>, total: usize) -> Self {
        let mut offsets = Vec::with_capacity(lens.len());
        let mut acc = 0;
        for &l in &lens {
            offsets.push(acc);
            acc += l;
        }
        debug_assert_eq!(acc, total);
        Self {
            scheme,
            lens,
            offsets,
            total,
        }
    }

    /// The partitioning scheme.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.lens.len()
    }

    /// Total number of series across all shards.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of series in shard `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn shard_len(&self, s: usize) -> usize {
        self.lens[s]
    }

    /// Translates a shard-local id to the global id.
    ///
    /// # Panics
    /// Panics if `shard` or `local` is out of range.
    pub fn to_global(&self, shard: usize, local: usize) -> usize {
        assert!(
            local < self.lens[shard],
            "local id {local} out of range for shard {shard} (len {})",
            self.lens[shard]
        );
        match self.scheme {
            PartitionScheme::Contiguous => self.offsets[shard] + local,
            PartitionScheme::Strided => shard + local * self.lens.len(),
        }
    }

    /// Translates a global id to its `(shard, local)` position.
    ///
    /// # Panics
    /// Panics if `global >= self.total()`.
    pub fn to_local(&self, global: usize) -> (usize, usize) {
        assert!(global < self.total, "global id {global} out of range ({})", self.total);
        match self.scheme {
            PartitionScheme::Contiguous => {
                // The last offset ≤ global names the shard.
                let shard = self.offsets.partition_point(|&o| o <= global) - 1;
                (shard, global - self.offsets[shard])
            }
            PartitionScheme::Strided => {
                let num = self.lens.len();
                (global % num, global / num)
            }
        }
    }

    /// The global ids of shard `s`, in shard-local order.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn shard_indices(&self, s: usize) -> Vec<usize> {
        (0..self.lens[s]).map(|local| self.to_global(s, local)).collect()
    }
}

/// Splits `data` into the shards of the canonical
/// [`ShardMap::new`]`(scheme, num_shards, data.len())` map, returning the
/// map and one dataset per shard (shard-local id order).
///
/// # Errors
/// [`Error::InvalidParameter`] for an unusable shard count (see
/// [`ShardMap::new`]).
pub fn partition(
    data: &Dataset,
    scheme: PartitionScheme,
    num_shards: usize,
) -> Result<(ShardMap, Vec<Dataset>)> {
    let map = ShardMap::new(scheme, num_shards, data.len())?;
    let shards = (0..num_shards)
        .map(|s| data.subset(&map.shard_indices(s)))
        .collect::<Result<Vec<_>>>()?;
    Ok((map, shards))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_walk;

    #[test]
    fn canonical_splits_cover_every_id_exactly_once() {
        for scheme in [PartitionScheme::Contiguous, PartitionScheme::Strided] {
            for total in [1usize, 2, 7, 10, 100] {
                for shards in 1..=total.min(6) {
                    let map = ShardMap::new(scheme, shards, total).unwrap();
                    assert_eq!(map.num_shards(), shards);
                    assert_eq!(map.total(), total);
                    assert_eq!((0..shards).map(|s| map.shard_len(s)).sum::<usize>(), total);
                    // Round trip every global id through the map.
                    let mut seen = vec![false; total];
                    for s in 0..shards {
                        for (local, global) in map.shard_indices(s).into_iter().enumerate() {
                            assert_eq!(map.to_global(s, local), global);
                            assert_eq!(map.to_local(global), (s, local));
                            assert!(!seen[global], "{scheme:?}: id {global} dealt twice");
                            seen[global] = true;
                        }
                    }
                    assert!(seen.into_iter().all(|b| b), "{scheme:?}: some id never dealt");
                    // Shard lengths differ by at most one.
                    let lens: Vec<usize> = (0..shards).map(|s| map.shard_len(s)).collect();
                    let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(max - min <= 1, "{scheme:?}: uneven split {lens:?}");
                }
            }
        }
    }

    #[test]
    fn contiguous_shards_are_consecutive_and_strided_shards_interleave() {
        let contiguous = ShardMap::new(PartitionScheme::Contiguous, 3, 10).unwrap();
        assert_eq!(contiguous.shard_indices(0), vec![0, 1, 2, 3]);
        assert_eq!(contiguous.shard_indices(1), vec![4, 5, 6]);
        assert_eq!(contiguous.shard_indices(2), vec![7, 8, 9]);
        let strided = ShardMap::new(PartitionScheme::Strided, 3, 10).unwrap();
        assert_eq!(strided.shard_indices(0), vec![0, 3, 6, 9]);
        assert_eq!(strided.shard_indices(1), vec![1, 4, 7]);
        assert_eq!(strided.shard_indices(2), vec![2, 5, 8]);
    }

    #[test]
    fn degenerate_shard_counts_are_rejected() {
        assert!(ShardMap::new(PartitionScheme::Contiguous, 0, 10).is_err());
        assert!(ShardMap::new(PartitionScheme::Strided, 11, 10).is_err());
        assert!(ShardMap::contiguous_from_lens(&[]).is_err());
        assert!(ShardMap::contiguous_from_lens(&[3, 0, 2]).is_err());
    }

    #[test]
    fn from_lens_round_trips_the_canonical_splits_and_rejects_impostors() {
        for scheme in [PartitionScheme::Contiguous, PartitionScheme::Strided] {
            let map = ShardMap::new(scheme, 4, 13).unwrap();
            let lens: Vec<usize> = (0..4).map(|s| map.shard_len(s)).collect();
            assert_eq!(ShardMap::from_lens(scheme, &lens).unwrap(), map);
        }
        // Arbitrary contiguous lengths are fine (a router trusts its
        // workers' sizes)...
        let uneven = ShardMap::contiguous_from_lens(&[7, 1, 2]).unwrap();
        assert_eq!(uneven.to_global(1, 0), 7);
        assert_eq!(uneven.to_local(9), (2, 1));
        // ...but strided lengths must match the canonical deal exactly.
        assert!(ShardMap::from_lens(PartitionScheme::Strided, &[7, 1, 2]).is_err());
    }

    #[test]
    fn partition_reassembles_to_the_original_dataset() {
        let data = random_walk(23, 8, 42);
        for scheme in [PartitionScheme::Contiguous, PartitionScheme::Strided] {
            let (map, shards) = partition(&data, scheme, 4).unwrap();
            assert_eq!(shards.len(), 4);
            for (s, shard) in shards.iter().enumerate() {
                assert_eq!(shard.len(), map.shard_len(s));
                assert_eq!(shard.series_len(), data.series_len());
                for local in 0..shard.len() {
                    assert_eq!(
                        shard.series(local),
                        data.series(map.to_global(s, local)),
                        "{scheme:?}: shard {s} local {local} holds the wrong series"
                    );
                }
            }
        }
        assert!(partition(&data, PartitionScheme::Contiguous, 24).is_err());
    }

    #[test]
    fn scheme_labels_round_trip() {
        for scheme in [PartitionScheme::Contiguous, PartitionScheme::Strided] {
            assert_eq!(PartitionScheme::parse(scheme.label()), Some(scheme));
        }
        assert_eq!(PartitionScheme::parse("diagonal"), None);
    }
}
