//! # hydra-data
//!
//! Dataset generators, query workload generators and brute-force ground
//! truth for the Lernaean Hydra experiments.
//!
//! The paper evaluates on one synthetic dataset family (random walks, the
//! standard model for financial series) and four real datasets (Sift1B,
//! Deep1B, Seismic, SALD). The real datasets are not redistributable at the
//! scale the paper uses, so this crate provides synthetic generators that
//! mimic the statistical structure that drives the paper's findings:
//!
//! * [`generators::random_walk`] — cumulative sums of Gaussian steps
//!   (identical to the paper's Rand datasets);
//! * [`generators::sift_like`] — non-negative, clustered,
//!   gradient-histogram-like vectors (SIFT descriptors);
//! * [`generators::deep_like`] — L2-normalized Gaussian-mixture vectors with
//!   correlated dimensions (deep network embeddings);
//! * [`generators::seismic_like`] — noise with transient bursts (seismograph
//!   recordings);
//! * [`generators::mri_like`] — smooth, low-frequency series (the SALD MRI
//!   dataset).
//!
//! Query workloads follow the paper's protocol: queries are either drawn
//! from a held-out portion of the same distribution, or derived from stored
//! series by adding progressively larger amounts of noise so as to control
//! difficulty.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod generators;
pub mod ground_truth;
pub mod partition;
pub mod queries;

pub use generators::{
    deep_like, mri_like, random_walk, seismic_like, sift_like, DatasetKind, GeneratorConfig,
};
pub use ground_truth::{
    exact_knn, exact_knn_batch, ground_truth, ground_truth_cache_file, ground_truth_cached,
    ground_truth_fingerprint, GroundTruth, GROUND_TRUTH_KIND,
};
pub use partition::{partition, PartitionScheme, ShardMap};
pub use queries::{noisy_queries, sample_queries, QueryWorkload};
