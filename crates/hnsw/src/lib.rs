//! # hydra-hnsw
//!
//! Hierarchical Navigable Small World graphs (Malkov & Yashunin), the
//! state-of-the-art in-memory ng-approximate nearest-neighbor method of the
//! Lernaean Hydra study.
//!
//! The index is a multi-layer proximity graph: every vector is assigned an
//! exponentially-distributed maximum layer; upper layers contain long-range
//! links that make greedy routing fast, the bottom layer contains all
//! vectors with denser connectivity (`2·M` links). A query descends the
//! layers greedily and runs a best-first beam search (`efSearch`
//! candidates) on the bottom layer.
//!
//! As in the paper, HNSW keeps the raw vectors in memory, provides no
//! guarantee on result quality (ng-approximate only), and its
//! speed/accuracy trade-off is controlled at *query* time by `efSearch`
//! (mapped to the `nprobe` knob of [`hydra_core::SearchMode::Ng`]) and at
//! *build* time by `M` and `efConstruction`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use hydra_core::{
    AnnIndex, Capabilities, Dataset, Error, Neighbor, QueryStats, Representation, Result,
    SearchMode, SearchParams, SearchResult, TopK,
};
use hydra_persist::{
    fingerprint_dataset, Fingerprint, PersistError, PersistentIndex, Section, SnapshotReader,
    SnapshotWriter,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;

/// Configuration of an [`Hnsw`] index.
#[derive(Debug, Clone, Copy)]
pub struct HnswConfig {
    /// Number of bidirectional links per node on the upper layers
    /// (layer 0 uses `2 · m`).
    pub m: usize,
    /// Beam width used while inserting nodes.
    pub ef_construction: usize,
    /// RNG seed for layer assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    /// `M = 16`, `efConstruction = 500`: the configuration the paper used
    /// for the Deep/Sift datasets.
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 500,
            seed: 0x4A53,
        }
    }
}

/// The HNSW graph index.
pub struct Hnsw {
    config: HnswConfig,
    data: Dataset,
    /// `neighbors[layer][node]` — adjacency lists. Layer 0 covers all nodes.
    neighbors: Vec<Vec<Vec<u32>>>,
    /// Maximum layer of each node.
    levels: Vec<u8>,
    entry_point: usize,
    max_level: usize,
}

impl Hnsw {
    /// Builds an HNSW graph over `dataset`.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty or `m < 2`.
    pub fn build(dataset: &Dataset, config: HnswConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if config.m < 2 {
            return Err(Error::InvalidParameter("m must be at least 2".into()));
        }
        let n = dataset.len();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let ml = 1.0 / (config.m as f64).ln();
        let levels: Vec<u8> = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                ((-u.ln() * ml).floor() as usize).min(31) as u8
            })
            .collect();
        let max_level = levels.iter().copied().max().unwrap_or(0) as usize;
        let mut index = Self {
            config,
            data: dataset.clone(),
            neighbors: (0..=max_level).map(|_| vec![Vec::new(); n]).collect(),
            levels,
            entry_point: 0,
            max_level,
        };
        // Make node 0 the initial entry point at its level.
        for id in 1..n {
            index.insert(id);
        }
        Ok(index)
    }

    fn dist(&self, a: usize, b: usize) -> f32 {
        hydra_core::euclidean(self.data.series(a), self.data.series(b))
    }

    fn dist_to(&self, query: &[f32], node: usize) -> f32 {
        hydra_core::euclidean(query, self.data.series(node))
    }

    /// Greedy search on one layer starting from `entry`, returning the
    /// closest node found.
    fn greedy_closest(&self, query: &[f32], entry: usize, layer: usize) -> usize {
        let mut current = entry;
        let mut current_dist = self.dist_to(query, current);
        loop {
            let mut improved = false;
            for &nb in &self.neighbors[layer][current] {
                let d = self.dist_to(query, nb as usize);
                if d < current_dist {
                    current = nb as usize;
                    current_dist = d;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Best-first beam search on one layer; returns up to `ef` closest nodes
    /// sorted by distance. `stats`, when provided, accumulates distance
    /// computations.
    fn search_layer(
        &self,
        query: &[f32],
        entry: usize,
        ef: usize,
        layer: usize,
        stats: Option<&mut QueryStats>,
    ) -> Vec<Neighbor> {
        let mut visited = vec![false; self.data.len()];
        let mut candidates: BinaryHeap<Reverse<Neighbor>> = BinaryHeap::new();
        let mut best: BinaryHeap<Neighbor> = BinaryHeap::new(); // max-heap of current ef best
        let mut computations = 0u64;

        let entry_dist = self.dist_to(query, entry);
        computations += 1;
        visited[entry] = true;
        candidates.push(Reverse(Neighbor::new(entry, entry_dist)));
        best.push(Neighbor::new(entry, entry_dist));

        while let Some(Reverse(cand)) = candidates.pop() {
            let worst = best.peek().map(|n| n.distance).unwrap_or(f32::INFINITY);
            if cand.distance > worst && best.len() >= ef {
                break;
            }
            for &nb in &self.neighbors[layer][cand.index] {
                let nb = nb as usize;
                if visited[nb] {
                    continue;
                }
                visited[nb] = true;
                let d = self.dist_to(query, nb);
                computations += 1;
                let worst = best.peek().map(|n| n.distance).unwrap_or(f32::INFINITY);
                if best.len() < ef || d < worst {
                    candidates.push(Reverse(Neighbor::new(nb, d)));
                    best.push(Neighbor::new(nb, d));
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        if let Some(stats) = stats {
            stats.distance_computations += computations;
            stats.series_scanned += computations;
        }
        let mut result = best.into_vec();
        result.sort();
        result
    }

    /// The neighbor-selection heuristic of the HNSW paper (Algorithm 4):
    /// a candidate is kept only if it is closer to the base point than to
    /// every already-kept neighbor. This preserves links *between* clusters,
    /// which plain "keep the closest M" would prune away, disconnecting the
    /// graph on clustered data.
    fn select_neighbors(&self, candidates: &[Neighbor], max_links: usize) -> Vec<Neighbor> {
        let mut selected: Vec<Neighbor> = Vec::with_capacity(max_links);
        for cand in candidates {
            if selected.len() >= max_links {
                break;
            }
            let dominated = selected
                .iter()
                .any(|kept| self.dist(cand.index, kept.index) < cand.distance);
            if !dominated {
                selected.push(*cand);
            }
        }
        // Fill any remaining slots with the closest skipped candidates.
        if selected.len() < max_links {
            for cand in candidates {
                if selected.len() >= max_links {
                    break;
                }
                if !selected.iter().any(|s| s.index == cand.index) {
                    selected.push(*cand);
                }
            }
        }
        selected
    }

    fn insert(&mut self, id: usize) {
        let level = self.levels[id] as usize;
        let query = self.data.series(id).to_vec();
        let mut entry = self.entry_point;

        // Descend from the top layer to level+1 greedily.
        let top = self.levels[self.entry_point] as usize;
        for layer in ((level + 1)..=top).rev() {
            entry = self.greedy_closest(&query, entry, layer);
        }

        // Insert with beam search on each layer from min(level, top) down to 0.
        for layer in (0..=level.min(top)).rev() {
            let found = self.search_layer(&query, entry, self.config.ef_construction, layer, None);
            entry = found.first().map(|n| n.index).unwrap_or(entry);
            let max_links = if layer == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            let selected = self.select_neighbors(&found, max_links);
            for nb in selected.iter().map(|n| n.index) {
                self.neighbors[layer][id].push(nb as u32);
                self.neighbors[layer][nb].push(id as u32);
                // Shrink over-connected neighbors with the same heuristic.
                if self.neighbors[layer][nb].len() > max_links {
                    let mut links: Vec<Neighbor> = self.neighbors[layer][nb]
                        .iter()
                        .map(|&other| Neighbor::new(other as usize, self.dist(nb, other as usize)))
                        .collect();
                    links.sort();
                    let kept = self.select_neighbors(&links, max_links);
                    self.neighbors[layer][nb] = kept.iter().map(|n| n.index as u32).collect();
                }
            }
        }

        // New top-level entry point?
        if level > self.levels[self.entry_point] as usize {
            self.entry_point = id;
        }
    }

    /// Extends the graph with `batch`, reproducing exactly what a fresh
    /// [`Hnsw::build`] over the grown collection would construct.
    ///
    /// Layer assignment comes from one seeded RNG stream drawn in node
    /// order; re-seeding and burning the draws the build already consumed
    /// resumes that stream, so node `i` receives the same level whether it
    /// arrived at build time or by ingest. Insertion itself is the same
    /// sequential [`Hnsw::insert`] loop the build runs — its outcome
    /// depends only on the nodes inserted before, never on future levels —
    /// so the grown graph is link-for-link identical to a fresh build.
    fn ingest(&mut self, batch: &[&[f32]]) -> Result<()> {
        for series in batch {
            if series.len() != self.data.series_len() {
                return Err(Error::DimensionMismatch {
                    expected: self.data.series_len(),
                    found: series.len(),
                });
            }
        }
        if batch.is_empty() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let ml = 1.0 / (self.config.m as f64).ln();
        let draw = move |rng: &mut StdRng| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            ((-u.ln() * ml).floor() as usize).min(31) as u8
        };
        for _ in 0..self.levels.len() {
            draw(&mut rng);
        }
        let first = self.data.len();
        for series in batch {
            self.data.push(series)?;
            self.levels.push(draw(&mut rng));
        }
        let total = self.data.len();
        self.max_level = self
            .max_level
            .max(self.levels[first..].iter().copied().max().unwrap_or(0) as usize);
        for layer in &mut self.neighbors {
            layer.resize(total, Vec::new());
        }
        while self.neighbors.len() <= self.max_level {
            self.neighbors.push(vec![Vec::new(); total]);
        }
        for id in first..total {
            self.insert(id);
        }
        Ok(())
    }

    /// Number of links in the whole graph (for diagnostics / footprint).
    pub fn num_links(&self) -> usize {
        self.neighbors
            .iter()
            .map(|layer| layer.iter().map(|l| l.len()).sum::<usize>())
            .sum()
    }

    /// The configuration the graph was built with.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// Highest layer of the hierarchy.
    pub fn max_level(&self) -> usize {
        self.max_level
    }
}

/// Everything that shapes an HNSW build, hashed together with the dataset
/// content (see [`PersistentIndex`]).
fn snapshot_fingerprint(config: &HnswConfig, data_fingerprint: u64) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(Hnsw::KIND);
    f.push_usize(config.m);
    f.push_usize(config.ef_construction);
    f.push_u64(config.seed);
    f.push_u64(data_fingerprint);
    f.finish()
}

impl PersistentIndex for Hnsw {
    type Config = HnswConfig;
    const KIND: &'static str = "hnsw";

    /// Snapshots the layer assignment and the full adjacency of every
    /// layer — the product of the expensive incremental construction. The
    /// raw vectors (which HNSW keeps in memory) are re-attached from the
    /// dataset at load time.
    fn save(&self, path: &Path) -> hydra_persist::Result<()> {
        let mut w = SnapshotWriter::new(
            Self::KIND,
            snapshot_fingerprint(&self.config, fingerprint_dataset(&self.data)),
        );

        let mut meta = Section::new();
        meta.put_usize(self.data.series_len());
        meta.put_usize(self.data.len());
        meta.put_usize(self.entry_point);
        meta.put_usize(self.max_level);
        w.push(meta);

        let mut levels = Section::new();
        levels.put_u8s(&self.levels);
        w.push(levels);

        let mut adjacency = Section::new();
        adjacency.put_usize(self.neighbors.len());
        for layer in &self.neighbors {
            for links in layer {
                adjacency.put_u32s(links);
            }
        }
        w.push(adjacency);

        w.write_to(path)
    }

    fn load(path: &Path, dataset: &Dataset, config: &HnswConfig) -> hydra_persist::Result<Self> {
        let mut r = SnapshotReader::open(path)?;
        r.expect_kind(Self::KIND)?;
        r.expect_fingerprint(snapshot_fingerprint(config, fingerprint_dataset(dataset)))?;

        let mut meta = r.next_section()?;
        let series_len = meta.get_usize()?;
        let n = meta.get_usize()?;
        let entry_point = meta.get_usize()?;
        let max_level = meta.get_usize()?;
        if series_len != dataset.series_len() || n != dataset.len() || entry_point >= n {
            return Err(PersistError::Corrupt(
                "snapshot metadata disagrees with the dataset".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let levels = sec.get_u8s()?;
        if levels.len() != n {
            return Err(PersistError::Corrupt(
                "layer assignment does not cover every node".into(),
            ));
        }
        if levels.iter().any(|&l| l as usize > max_level) {
            return Err(PersistError::Corrupt(
                "node level exceeds the maximum layer".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let layer_count = sec.get_usize()?;
        if layer_count != max_level + 1 {
            return Err(PersistError::Corrupt(
                "adjacency layer count disagrees with the maximum level".into(),
            ));
        }
        let mut neighbors = Vec::with_capacity(layer_count);
        for _ in 0..layer_count {
            let mut layer = Vec::with_capacity(n);
            for _ in 0..n {
                let links = sec.get_u32s()?;
                if links.iter().any(|&l| l as usize >= n) {
                    return Err(PersistError::Corrupt("graph link out of range".into()));
                }
                layer.push(links);
            }
            neighbors.push(layer);
        }

        Ok(Self {
            config: *config,
            data: dataset.clone(),
            neighbors,
            levels,
            entry_point,
            max_level,
        })
    }
}

impl AnnIndex for Hnsw {
    fn name(&self) -> &'static str {
        "HNSW"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: false,
            ng_approximate: true,
            epsilon_approximate: false,
            delta_epsilon_approximate: false,
            disk_resident: false,
            streaming_insert: true,
            representation: Representation::Graph,
        }
    }

    fn num_series(&self) -> usize {
        self.data.len()
    }

    fn series_len(&self) -> usize {
        self.data.series_len()
    }

    fn memory_footprint(&self) -> usize {
        // Graph links plus the raw vectors, which HNSW must keep in memory.
        self.num_links() * std::mem::size_of::<u32>() + self.data.payload_bytes()
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        if query.len() != self.data.series_len() {
            return Err(Error::DimensionMismatch {
                expected: self.data.series_len(),
                found: query.len(),
            });
        }
        let SearchMode::Ng { nprobe } = params.mode else {
            return Err(Error::UnsupportedMode(
                "HNSW is ng-approximate only (no guarantees)".into(),
            ));
        };
        let ef = nprobe.max(params.k).max(1);
        let mut stats = QueryStats::new();

        // Greedy descent through the upper layers.
        let mut entry = self.entry_point;
        let top = self.levels[self.entry_point] as usize;
        for layer in (1..=top).rev() {
            entry = self.greedy_closest(query, entry, layer);
        }
        // Beam search on the bottom layer.
        let found = self.search_layer(query, entry, ef, 0, Some(&mut stats));
        let mut top_k = TopK::new(params.k.max(1));
        for n in found {
            top_k.push(n);
        }
        Ok(SearchResult::new(top_k.into_sorted(), stats))
    }

    fn insert_batch(&mut self, batch: &[&[f32]]) -> Result<()> {
        self.ingest(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{exact_knn, random_walk, sift_like};

    fn recall(found: &[Neighbor], truth: &[Neighbor]) -> f64 {
        let truth_ids: std::collections::HashSet<usize> = truth.iter().map(|n| n.index).collect();
        found.iter().filter(|n| truth_ids.contains(&n.index)).count() as f64 / truth.len() as f64
    }

    fn build(n: usize, dim: usize) -> (Dataset, Hnsw) {
        let data = sift_like(n, dim, 31);
        let config = HnswConfig {
            m: 8,
            ef_construction: 64,
            seed: 2,
        };
        let h = Hnsw::build(&data, config).unwrap();
        (data, h)
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let empty = Dataset::new(4).unwrap();
        assert!(Hnsw::build(&empty, HnswConfig::default()).is_err());
        let one = random_walk(4, 8, 1);
        assert!(Hnsw::build(
            &one,
            HnswConfig {
                m: 1,
                ..HnswConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn high_ef_search_reaches_high_recall() {
        let (data, h) = build(800, 24);
        let queries = sift_like(10, 24, 77);
        let mut total_recall = 0.0;
        for q in queries.iter() {
            let res = h.search(q, &SearchParams::ng(10, 128)).unwrap();
            let gt = exact_knn(&data, q, 10);
            total_recall += recall(&res.neighbors, &gt);
        }
        let avg = total_recall / 10.0;
        assert!(avg > 0.85, "HNSW recall too low: {avg}");
    }

    #[test]
    fn larger_ef_does_not_reduce_quality() {
        let (data, h) = build(600, 16);
        let q_owned = sift_like(1, 16, 5);
        let q = q_owned.series(0);
        let small = h.search(q, &SearchParams::ng(10, 10)).unwrap();
        let large = h.search(q, &SearchParams::ng(10, 200)).unwrap();
        let gt = exact_knn(&data, q, 10);
        assert!(recall(&large.neighbors, &gt) >= recall(&small.neighbors, &gt));
        assert!(large.stats.distance_computations >= small.stats.distance_computations);
    }

    #[test]
    fn search_touches_only_a_fraction_of_the_data() {
        let (data, h) = build(1000, 16);
        let q_owned = sift_like(1, 16, 9);
        let res = h.search(q_owned.series(0), &SearchParams::ng(5, 32)).unwrap();
        assert!((res.stats.distance_computations as usize) < data.len() / 2);
        assert_eq!(res.neighbors.len(), 5);
    }

    #[test]
    fn guarantee_modes_are_rejected() {
        let (_, h) = build(100, 16);
        let q = vec![0.0f32; 16];
        assert!(h.search(&q, &SearchParams::exact(1)).is_err());
        assert!(h.search(&q, &SearchParams::epsilon(1, 1.0)).is_err());
        assert!(h
            .search(&q, &SearchParams::delta_epsilon(1, 0.9, 1.0))
            .is_err());
        assert!(h.search(&[0.0; 3], &SearchParams::ng(1, 10)).is_err());
    }

    #[test]
    fn ingest_matches_fresh_build_link_for_link() {
        let data = sift_like(300, 16, 41);
        let config = HnswConfig {
            m: 6,
            ef_construction: 48,
            seed: 3,
        };
        let fresh = Hnsw::build(&data, config).unwrap();
        let mut base = Dataset::new(16).unwrap();
        for i in 0..200 {
            base.push(data.series(i)).unwrap();
        }
        let mut grown = Hnsw::build(&base, config).unwrap();
        let rest: Vec<&[f32]> = (200..300).map(|i| data.series(i)).collect();
        grown.insert_batch(&rest[..1]).unwrap();
        grown.insert_batch(&rest[1..37]).unwrap();
        grown.insert_batch(&[]).unwrap();
        grown.insert_batch(&rest[37..]).unwrap();
        assert_eq!(grown.levels, fresh.levels, "resumed RNG must match");
        assert_eq!(grown.neighbors, fresh.neighbors, "grown graph drifted");
        assert_eq!(grown.entry_point, fresh.entry_point);
        assert_eq!(grown.max_level, fresh.max_level);
        // A malformed batch is rejected wholesale.
        assert!(grown.insert_batch(&[&[0.0f32; 3][..]]).is_err());
        assert_eq!(grown.num_series(), 300);
        assert!(grown.capabilities().streaming_insert);
    }

    #[test]
    fn metadata_is_consistent() {
        let (_, h) = build(200, 16);
        assert_eq!(h.name(), "HNSW");
        assert!(!h.capabilities().exact);
        assert!(!h.capabilities().disk_resident);
        assert_eq!(h.num_series(), 200);
        assert_eq!(h.series_len(), 16);
        assert!(h.memory_footprint() > 200 * 16 * 4);
        assert!(h.num_links() > 0);
        assert_eq!(h.config().m, 8);
    }
}
