//! # hydra-bench
//!
//! Shared harness utilities for the figure-reproduction binaries
//! (`src/bin/fig*.rs`, `src/bin/table1_taxonomy.rs`), the serving-mode
//! load generator (`src/bin/serve_client.rs`, which replays these same
//! workloads against a `hydra-serve` server) and the Criterion
//! micro/ablation benchmarks (`benches/`).
//!
//! Every binary prints CSV to stdout with the schema
//! `figure,dataset,method,setting,x,y` where `x` is usually the accuracy
//! (MAP) and `y` the efficiency measure of the corresponding figure of the
//! paper (throughput, combined cost, % data accessed, random I/Os, ...).
//! `crates/bench/README.md` records every binary, its flags (including
//! `--threads` for the parallel serving mode) and the expected output
//! shape.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::path::{Path, PathBuf};
use std::time::Instant;

use hydra::prelude::*;
use hydra::{AnnIndex, Dataset};

/// Scale factor applied to all dataset sizes (override with the
/// `HYDRA_SCALE` environment variable, e.g. `HYDRA_SCALE=4` for a longer,
/// more faithful run).
pub fn scale() -> usize {
    std::env::var("HYDRA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// A dataset prepared for one experiment.
pub struct BenchDataset {
    /// Short name used in CSV output ("rand256", "sift-like", ...).
    pub name: &'static str,
    /// The series collection.
    pub data: Dataset,
    /// Query workload (paper protocol: 100 queries; scaled down here).
    pub workload: hydra::data::QueryWorkload,
    /// Exact answers for the workload.
    pub truth: hydra::data::GroundTruth,
}

/// Builds one named dataset with its workload and ground truth.
///
/// When the `HYDRA_GT_CACHE` environment variable names a directory, the
/// exact answers are served from (or computed into) that directory's
/// ground-truth cache, keyed by the dataset/query/`k` fingerprint — a large
/// wall-clock win for repeated figure runs over the same configuration. An
/// unusable cache never fails a run; it only costs the recompute.
pub fn make_dataset(name: &'static str, n: usize, len: usize, k: usize, seed: u64) -> BenchDataset {
    let kind = match name {
        "sift-like" => hydra::data::DatasetKind::SiftLike,
        "deep-like" => hydra::data::DatasetKind::DeepLike,
        "seismic-like" => hydra::data::DatasetKind::SeismicLike,
        "sald-like" => hydra::data::DatasetKind::MriLike,
        _ => hydra::data::DatasetKind::RandomWalk,
    };
    let data = kind.generate(n, len, seed);
    let workload = hydra::data::noisy_queries(&data, 20, &[0.0, 0.1, 0.25], seed ^ 0xABCD);
    let truth = match std::env::var("HYDRA_GT_CACHE") {
        Ok(dir) if !dir.is_empty() => {
            hydra::data::ground_truth_cached(&data, &workload, k, Path::new(&dir)).0
        }
        _ => hydra::data::ground_truth(&data, &workload, k),
    };
    BenchDataset {
        name,
        data,
        workload,
        truth,
    }
}

/// The in-memory experiment datasets of Figure 3 (scaled down).
pub fn in_memory_datasets(k: usize) -> Vec<BenchDataset> {
    let s = scale();
    vec![
        make_dataset("rand256", 4_000 * s, 256, k, 1),
        make_dataset("rand-long", 1_000 * s, 1_024, k, 2),
        make_dataset("sift-like", 4_000 * s, 128, k, 3),
        make_dataset("deep-like", 4_000 * s, 96, k, 4),
    ]
}

/// The on-disk experiment datasets of Figure 4 (scaled down).
pub fn on_disk_datasets(k: usize) -> Vec<BenchDataset> {
    let s = scale();
    vec![
        make_dataset("rand256", 8_000 * s, 256, k, 5),
        make_dataset("sift-like", 8_000 * s, 128, k, 6),
        make_dataset("deep-like", 8_000 * s, 96, k, 7),
    ]
}

/// The five datasets of the best-methods comparison (Figure 6).
pub fn best_method_datasets(k: usize) -> Vec<BenchDataset> {
    let s = scale();
    vec![
        make_dataset("rand256", 6_000 * s, 256, k, 11),
        make_dataset("sift-like", 6_000 * s, 128, k, 12),
        make_dataset("deep-like", 6_000 * s, 96, k, 13),
        make_dataset("sald-like", 6_000 * s, 128, k, 14),
        make_dataset("seismic-like", 6_000 * s, 256, k, 15),
    ]
}

/// A method obtained for an experiment, together with how it was obtained.
pub struct BuiltMethod {
    /// The index behind the uniform interface.
    pub index: Box<dyn AnnIndex>,
    /// Wall-clock seconds spent obtaining the index: a fresh build, or —
    /// when it was restored from a snapshot — the load (see
    /// [`BuiltMethod::loaded`]). Figure binaries report this value as their
    /// build-time column either way, so a `--load-index` run honestly shows
    /// the cost of booting from disk instead of a rebuild.
    pub build_seconds: f64,
    /// Whether the index was loaded from a snapshot rather than built.
    pub loaded: bool,
}

/// The snapshot file one method of one dataset maps to: lowercase
/// alphanumerics (and dashes) of the dataset name and the index kind tag,
/// e.g. `rand256-isax2.snap`.
pub fn snapshot_file(dir: &Path, dataset: &str, kind: &str) -> PathBuf {
    dir.join(format!("{}-{}.snap", sanitize(dataset), sanitize(kind)))
}

/// The snapshot file a dataset itself maps to (`rand256.data.snap`) —
/// written alongside the index snapshots by `--save-index` so a
/// `hydra-serve` process can boot the directory without regenerating any
/// data.
pub fn dataset_snapshot_file(dir: &Path, dataset: &str) -> PathBuf {
    dir.join(format!("{}.data.snap", sanitize(dataset)))
}

fn sanitize(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '-')
        .collect::<String>()
        .to_ascii_lowercase()
}

/// Obtains one index: loads it from `flags.load_index` (hard error if the
/// snapshot is missing, damaged, or fingerprint-mismatched — a serving run
/// must never silently fall back to a rebuild), or builds it and, with
/// `flags.save_index`, snapshots it for later runs. With
/// `flags.out_of_core`, disk-capable indexes re-attach their raw series
/// file-backed: dataset-ordered stores onto the directory's
/// `<dataset>.data.snap` itself, leaf-ordered ones onto a verified
/// `<snapshot>.series` sidecar.
fn obtain<T, F>(
    dataset_name: &str,
    data: &Dataset,
    config: T::Config,
    flags: &BenchFlags,
    build: F,
) -> BuiltMethod
where
    T: AnnIndex + hydra::PersistentIndex + 'static,
    T::Config: Copy,
    F: Fn(&Dataset, T::Config) -> hydra::Result<T>,
{
    if let Some(dir) = &flags.load_index {
        let path = snapshot_file(dir, dataset_name, T::KIND);
        let data_snap = dataset_snapshot_file(dir, dataset_name);
        let backing = if flags.out_of_core {
            hydra::StoreBacking::FileBacked {
                // Directories saved by `--save-index` always hold the
                // dataset snapshot; tolerate hand-built ones without it
                // (the loaders fall back to a sidecar).
                dataset_snapshot: data_snap.exists().then_some(data_snap.as_path()),
            }
        } else {
            hydra::StoreBacking::Resident
        };
        let t = Instant::now();
        let index = T::load_backed(&path, data, &config, backing).unwrap_or_else(|e| {
            eprintln!(
                "error: cannot load {} snapshot from {}: {e}",
                T::KIND,
                path.display()
            );
            std::process::exit(2);
        });
        return BuiltMethod {
            index: Box::new(index),
            build_seconds: t.elapsed().as_secs_f64(),
            loaded: true,
        };
    }
    let t = Instant::now();
    let index = match flags.ingest_split {
        Some(split) => build_with_ingest(data, config, split, &build),
        None => build(data, config).expect("index build"),
    };
    let build_seconds = t.elapsed().as_secs_f64();
    if let Some(dir) = &flags.save_index {
        let path = snapshot_file(dir, dataset_name, T::KIND);
        index.save(&path).unwrap_or_else(|e| {
            eprintln!(
                "error: cannot save {} snapshot to {}: {e}",
                T::KIND,
                path.display()
            );
            std::process::exit(2);
        });
    }
    BuiltMethod {
        index: Box::new(index),
        build_seconds,
        loaded: false,
    }
}

/// The `--ingest-split F` build path: build over the first `ceil(F·n)`
/// series, then stream the remaining series in through
/// [`AnnIndex::insert_batch`] in fixed chunks. Methods that do not
/// advertise [`hydra::Capabilities::streaming_insert`] are rebuilt over
/// the full dataset instead, so every method still answers over all `n`
/// series. Either way the resulting index answers — and, under
/// `--save-index`, snapshots — identically to an unsplit build, which is
/// the ingest-equivalence contract the CI smoke diffs.
fn build_with_ingest<T, C, F>(data: &Dataset, config: C, split: f64, build: &F) -> T
where
    T: AnnIndex,
    C: Copy,
    F: Fn(&Dataset, C) -> hydra::Result<T>,
{
    /// Chunk size for the streamed tail. Any chunking yields the same
    /// index (proven by the ingest-equivalence suites); a modest fixed
    /// size keeps the batches realistic without a tuning knob.
    const INGEST_CHUNK: usize = 256;
    let n = data.len();
    let len = data.series_len();
    let head_len = ((n as f64) * split).ceil().max(1.0) as usize;
    let head_len = head_len.min(n);
    let head = Dataset::from_flat(len, data.as_flat()[..head_len * len].to_vec())
        .expect("ingest-split head dataset");
    let mut index = build(&head, config).expect("index build");
    if head_len == n {
        return index;
    }
    if !index.capabilities().streaming_insert {
        return build(data, config).expect("index build");
    }
    let mut at = head_len;
    while at < n {
        let hi = (at + INGEST_CHUNK).min(n);
        let batch: Vec<&[f32]> = (at..hi).map(|i| data.series(i)).collect();
        index
            .insert_batch(&batch)
            .expect("streaming ingest of the dataset tail");
        at = hi;
    }
    index
}

/// Builds every method applicable to the scenario, timing each build.
pub fn build_methods(data: &Dataset, in_memory: bool, seed: u64) -> Vec<BuiltMethod> {
    build_or_load_methods("default", data, in_memory, seed, &BenchFlags::default())
}

/// [`build_methods`] with snapshot support: with `flags.load_index` every
/// method is restored from `DIR/<dataset>-<kind>.snap` (skipping its build
/// phase entirely), and with `flags.save_index` every freshly built method
/// is written there for later runs, together with one
/// `DIR/<dataset>.data.snap` dataset snapshot so a `hydra-serve` process
/// can boot the directory self-sufficiently. The method set and
/// configurations are identical to [`build_methods`] — and, crucially, to
/// [`hydra::standard_configs`], which is what lets
/// `hydra::standard_registry` restore these snapshots with matching
/// fingerprints.
pub fn build_or_load_methods(
    dataset_name: &str,
    data: &Dataset,
    in_memory: bool,
    seed: u64,
    flags: &BenchFlags,
) -> Vec<BuiltMethod> {
    if flags.shards > 1 {
        return build_or_load_methods_sharded(dataset_name, data, in_memory, seed, flags);
    }
    let configs = hydra::standard_configs_io(
        in_memory,
        seed,
        flags.pool_pages,
        flags.page_codec,
        flags.backing_io,
    );
    if let Some(dir) = &flags.save_index {
        let path = dataset_snapshot_file(dir, dataset_name);
        hydra::persist::dataset::save_dataset(data, &path).unwrap_or_else(|e| {
            eprintln!(
                "error: cannot save the {dataset_name} dataset snapshot to {}: {e}",
                path.display()
            );
            std::process::exit(2);
        });
    }
    let mut out: Vec<BuiltMethod> = Vec::new();
    out.push(obtain(dataset_name, data, configs.dstree, flags, DsTree::build));
    out.push(obtain(dataset_name, data, configs.isax, flags, Isax2Plus::build));
    out.push(obtain(dataset_name, data, configs.vafile, flags, VaPlusFile::build));
    out.push(obtain(dataset_name, data, configs.srs, flags, Srs::build));
    if data.series_len() % 8 == 0 {
        out.push(obtain(
            dataset_name,
            data,
            configs.imi,
            flags,
            InvertedMultiIndex::build,
        ));
    }
    if in_memory {
        out.push(obtain(dataset_name, data, configs.hnsw, flags, Hnsw::build));
        out.push(obtain(dataset_name, data, configs.qalsh, flags, Qalsh::build));
        out.push(obtain(dataset_name, data, configs.flann, flags, Flann::build));
    }
    out
}

/// The `--shards S` path of [`build_or_load_methods`]: partition the
/// dataset into `S` contiguous shards, run the ordinary unsharded path
/// once per shard (so persistence, fingerprints, pool overrides and
/// out-of-core backing all work per shard, against that shard's own
/// `shard-<s>/` snapshot subdirectory — exactly what a
/// `hydra-serve --shard-role worker` boots), and wrap each method's `S`
/// per-shard indexes in one [`hydra::ShardedIndex`]. Method names, CSV
/// rows and sweep settings are unchanged; `build_seconds` is the sum over
/// shards and `loaded` means *every* shard was loaded.
fn build_or_load_methods_sharded(
    dataset_name: &str,
    data: &Dataset,
    in_memory: bool,
    seed: u64,
    flags: &BenchFlags,
) -> Vec<BuiltMethod> {
    let (map, shard_data) =
        hydra::partition(data, hydra::PartitionScheme::Contiguous, flags.shards)
            .unwrap_or_else(|e| {
                eprintln!(
                    "error: cannot split {dataset_name} ({} series) into {} shards: {e}",
                    data.len(),
                    flags.shards
                );
                std::process::exit(2);
            });
    let shard_dir = |dir: &PathBuf, s: usize| dir.join(format!("shard-{s}"));
    let mut per_shard: Vec<Vec<BuiltMethod>> = Vec::with_capacity(flags.shards);
    for (s, shard) in shard_data.iter().enumerate() {
        let sub = BenchFlags {
            shards: 1,
            save_index: flags.save_index.as_ref().map(|d| shard_dir(d, s)),
            load_index: flags.load_index.as_ref().map(|d| shard_dir(d, s)),
            ..flags.clone()
        };
        if let Some(dir) = &sub.save_index {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("error: cannot create shard directory {}: {e}", dir.display());
                std::process::exit(2);
            });
        }
        per_shard.push(build_or_load_methods(dataset_name, shard, in_memory, seed, &sub));
    }
    let num_methods = per_shard[0].len();
    let mut columns: Vec<_> = per_shard.into_iter().map(Vec::into_iter).collect();
    (0..num_methods)
        .map(|_| {
            let parts: Vec<BuiltMethod> = columns
                .iter_mut()
                .map(|it| it.next().expect("every shard builds the same method set"))
                .collect();
            let build_seconds = parts.iter().map(|m| m.build_seconds).sum();
            let loaded = parts.iter().all(|m| m.loaded);
            let shards: Vec<Box<dyn AnnIndex>> = parts.into_iter().map(|m| m.index).collect();
            let index = hydra::ShardedIndex::new(shards, map.clone())
                .expect("per-shard builds match the partition map");
            BuiltMethod {
                index: Box::new(index),
                build_seconds,
                loaded,
            }
        })
        .collect()
}

/// The parameter sweep a method uses to trace its efficiency/accuracy curve,
/// mirroring the paper's tuning knobs: `nprobe`/`efs` for ng-approximate
/// methods, ε (at δ = 1) and δ (at small ε) for the methods with guarantees.
pub fn sweep_settings(
    index: &dyn AnnIndex,
    k: usize,
    guarantees: bool,
) -> Vec<(String, SearchParams)> {
    sweep_settings_for(&index.capabilities(), k, guarantees)
}

/// [`sweep_settings`] from a bare [`hydra::Capabilities`] value — for
/// callers that know a method only by its advertised capabilities, like
/// the `serve_client` load generator planning sweeps from a server's
/// index listing. Keeping one implementation guarantees a served sweep
/// replays exactly the settings the offline figures measured.
pub fn sweep_settings_for(
    caps: &hydra::Capabilities,
    k: usize,
    guarantees: bool,
) -> Vec<(String, SearchParams)> {
    let mut settings = Vec::new();
    if guarantees && caps.delta_epsilon_approximate {
        for eps in [5.0f32, 2.0, 1.0, 0.5, 0.0] {
            settings.push((format!("eps={eps}"), SearchParams::epsilon(k, eps)));
        }
        for delta in [0.5f32, 0.9, 0.99] {
            settings.push((
                format!("delta={delta}"),
                SearchParams::delta_epsilon(k, delta, 1.0),
            ));
        }
    } else if !guarantees && caps.ng_approximate {
        for nprobe in [1usize, 2, 4, 8, 16, 64, 256] {
            settings.push((format!("nprobe={nprobe}"), SearchParams::ng(k, nprobe)));
        }
    }
    settings
}

/// Runs one sweep point and returns `(map, report)`.
pub fn run_point(
    index: &dyn AnnIndex,
    dataset: &BenchDataset,
    params: &SearchParams,
) -> (f64, hydra::eval::WorkloadReport) {
    run_point_threaded(index, dataset, params, 1)
}

/// Runs one sweep point with `threads` worker threads and returns
/// `(map, report)`.
///
/// One thread uses the paper-faithful sequential protocol
/// ([`hydra::eval::run_workload`]); more than one shards the workload over
/// scoped threads with batched `search_batch` calls
/// ([`hydra::eval::run_workload_parallel`]). Accuracy and cost counters are
/// identical either way; only throughput changes.
pub fn run_point_threaded(
    index: &dyn AnnIndex,
    dataset: &BenchDataset,
    params: &SearchParams,
    threads: usize,
) -> (f64, hydra::eval::WorkloadReport) {
    let report = if threads <= 1 {
        hydra::eval::run_workload(index, &dataset.workload, &dataset.truth, params)
    } else {
        hydra::eval::run_workload_parallel(index, &dataset.workload, &dataset.truth, params, threads)
    };
    (report.accuracy.map, report)
}

/// Command-line flags of the persistence-aware figure binaries
/// (`fig2_indexing`, `fig3_inmemory`, `fig4_ondisk`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFlags {
    /// Worker threads for the query phase (`--threads N`; always 1 for
    /// binaries without a query phase).
    pub threads: usize,
    /// Directory to snapshot every built index into (`--save-index DIR`).
    pub save_index: Option<PathBuf>,
    /// Directory to restore every index from instead of building
    /// (`--load-index DIR`).
    pub load_index: Option<PathBuf>,
    /// Buffer-pool capacity override for the disk-capable methods, in
    /// pages (`--pool-pages N`). `None` keeps the scenario's default.
    pub pool_pages: Option<usize>,
    /// Serve raw series out-of-core (`--out-of-core`): loaded indexes
    /// attach their stores file-backed instead of resident. Requires
    /// `--load-index` — a fresh build is always resident.
    pub out_of_core: bool,
    /// Shard count (`--shards S`, default 1 = unsharded). With `S > 1`
    /// every method is built as a [`hydra::ShardedIndex`] over `S`
    /// contiguous shards of the dataset; snapshot directories gain one
    /// `shard-<s>/` subdirectory per shard, each a complete bootable
    /// directory for one `hydra-serve --shard-role worker`.
    pub shards: usize,
    /// Streaming-ingest split (`--ingest-split F`, `0 < F < 1`): build
    /// each index over the first `ceil(F·n)` series only, then ingest the
    /// rest through [`hydra::AnnIndex::insert_batch`] in chunks. Methods
    /// without [`hydra::Capabilities::streaming_insert`] fall back to a
    /// full build. Either way the ingest-equivalence contract makes every
    /// accuracy column identical to an unsplit run — which is exactly
    /// what the CI ingest smoke diffs. Incompatible with `--load-index`
    /// (a loaded index has no build phase to split).
    pub ingest_split: Option<f64>,
    /// Stage-trace CSV file (`--trace-out FILE`): each sweep point appends
    /// one row per recorded [`hydra_obs::Stage`] of its workload's
    /// [`hydra_obs::QueryTrace`] — where the time of a figure's queries
    /// went (fan-out vs. per-shard search) and what I/O each stage did.
    /// `None` (the default) records nothing and costs nothing.
    pub trace_out: Option<PathBuf>,
    /// Page codec for the disk-capable methods' raw-series tier
    /// (`--page-codec u8|f16|f32`, default `f32`). A non-`f32` codec keeps
    /// the sealed pages quantized (u8: ~4× fewer bytes per page read, f16:
    /// ~2×) and refines every candidate against the exact `f32` series, so
    /// accuracy and distance columns stay bit-identical while `bytes_read`
    /// drops. Requires `--load-index`: a fresh build serves its raw tier
    /// unsealed, so the codec would silently measure nothing.
    pub page_codec: hydra::PageCodec,
    /// How a file-backed store transfers page bytes (`--backing
    /// pread|mmap`, default `pread`). A pure serving knob: answers,
    /// accuracy and every per-query counter are identical under either
    /// mode. Requires `--out-of-core` — a resident store does no file
    /// I/O to transfer differently.
    pub backing_io: hydra::FileIoMode,
}

impl Default for BenchFlags {
    /// No persistence, the paper's sequential single-thread protocol.
    fn default() -> Self {
        Self {
            threads: 1,
            save_index: None,
            load_index: None,
            pool_pages: None,
            out_of_core: false,
            shards: 1,
            ingest_split: None,
            trace_out: None,
            page_codec: hydra::PageCodec::F32,
            backing_io: hydra::FileIoMode::Pread,
        }
    }
}

/// Parses the figure-binary flags strictly: both `--flag VALUE` and
/// `--flag=VALUE` spellings are accepted, and anything unusable — a bad
/// value, a repeated flag, an unknown argument, `--save-index` together
/// with `--load-index`, or `--threads` on a binary without a query phase
/// (`threads_allowed = false`) — is an error, never a silent fallback: a
/// mistyped invocation must not let sequential or rebuilt numbers
/// masquerade as serving-mode ones.
pub fn parse_bench_flags(
    args: &[String],
    threads_allowed: bool,
) -> std::result::Result<BenchFlags, String> {
    let mut flags = BenchFlags::default();
    let mut threads_seen = false;
    let mut shards_seen = false;
    let mut codec_seen = false;
    let mut backing_seen = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| -> Option<std::result::Result<String, String>> {
            if arg == name {
                Some(
                    it.next()
                        .map(|v| v.clone())
                        .ok_or_else(|| format!("{name} requires a value")),
                )
            } else {
                arg.strip_prefix(&format!("{name}=")).map(|v| Ok(v.to_string()))
            }
        };
        if let Some(value) = value_of("--threads") {
            let value = value?;
            if !threads_allowed {
                return Err("this binary has no query phase and does not take --threads".into());
            }
            if threads_seen {
                return Err("--threads given more than once".into());
            }
            threads_seen = true;
            flags.threads = match value.parse::<usize>() {
                Ok(t) if t > 0 => t,
                _ => return Err(format!("--threads expects a positive integer, got {value:?}")),
            };
        } else if let Some(value) = value_of("--save-index") {
            let value = value?;
            if flags.save_index.is_some() {
                return Err("--save-index given more than once".into());
            }
            if value.is_empty() {
                return Err("--save-index expects a directory path".into());
            }
            flags.save_index = Some(PathBuf::from(value));
        } else if let Some(value) = value_of("--load-index") {
            let value = value?;
            if flags.load_index.is_some() {
                return Err("--load-index given more than once".into());
            }
            if value.is_empty() {
                return Err("--load-index expects a directory path".into());
            }
            flags.load_index = Some(PathBuf::from(value));
        } else if let Some(value) = value_of("--pool-pages") {
            let value = value?;
            if flags.pool_pages.is_some() {
                return Err("--pool-pages given more than once".into());
            }
            flags.pool_pages = match value.parse::<usize>() {
                Ok(n) => Some(n),
                _ => {
                    return Err(format!(
                        "--pool-pages expects a non-negative integer, got {value:?}"
                    ))
                }
            };
        } else if arg == "--out-of-core" {
            if flags.out_of_core {
                return Err("--out-of-core given more than once".into());
            }
            flags.out_of_core = true;
        } else if let Some(value) = value_of("--ingest-split") {
            let value = value?;
            if flags.ingest_split.is_some() {
                return Err("--ingest-split given more than once".into());
            }
            flags.ingest_split = match value.parse::<f64>() {
                Ok(f) if f > 0.0 && f < 1.0 => Some(f),
                _ => {
                    return Err(format!(
                        "--ingest-split expects a fraction strictly between 0 and 1, got {value:?}"
                    ))
                }
            };
        } else if let Some(value) = value_of("--trace-out") {
            let value = value?;
            if flags.trace_out.is_some() {
                return Err("--trace-out given more than once".into());
            }
            if value.is_empty() {
                return Err("--trace-out expects a file path".into());
            }
            flags.trace_out = Some(PathBuf::from(value));
        } else if let Some(value) = value_of("--page-codec") {
            let value = value?;
            if codec_seen {
                return Err("--page-codec given more than once".into());
            }
            codec_seen = true;
            flags.page_codec = match hydra::PageCodec::parse(&value) {
                Ok(codec) => codec,
                Err(_) => {
                    return Err(format!(
                        "--page-codec expects u8, f16 or f32, got {value:?}"
                    ))
                }
            };
        } else if let Some(value) = value_of("--backing") {
            let value = value?;
            if backing_seen {
                return Err("--backing given more than once".into());
            }
            backing_seen = true;
            flags.backing_io = match hydra::FileIoMode::parse(&value) {
                Some(io) => io,
                None => return Err(format!("--backing expects pread or mmap, got {value:?}")),
            };
        } else if let Some(value) = value_of("--shards") {
            let value = value?;
            if shards_seen {
                return Err("--shards given more than once".into());
            }
            shards_seen = true;
            flags.shards = match value.parse::<usize>() {
                Ok(s) if s > 0 => s,
                _ => return Err(format!("--shards expects a positive integer, got {value:?}")),
            };
        } else {
            return Err(format!(
                "unrecognized argument {arg:?} (accepted: {}--save-index DIR, --load-index DIR, \
                 --pool-pages N, --out-of-core, --page-codec u8|f16|f32, --backing pread|mmap, \
                 --shards S, --ingest-split F, --trace-out FILE)",
                if threads_allowed { "--threads N, " } else { "" }
            ));
        }
    }
    if flags.save_index.is_some() && flags.load_index.is_some() {
        return Err(
            "--save-index and --load-index are mutually exclusive (a loaded index is already saved)"
                .into(),
        );
    }
    if flags.out_of_core && flags.load_index.is_none() {
        return Err(
            "--out-of-core requires --load-index DIR (a fresh build is always resident; save \
             snapshots first, then re-run out-of-core)"
                .into(),
        );
    }
    if flags.ingest_split.is_some() && flags.load_index.is_some() {
        return Err(
            "--ingest-split and --load-index are mutually exclusive (a loaded index has no \
             build phase to split)"
                .into(),
        );
    }
    if flags.page_codec != hydra::PageCodec::F32 && flags.load_index.is_none() {
        return Err(
            "--page-codec u8/f16 requires --load-index DIR (a fresh build serves its raw tier \
             unsealed, so the codec would measure nothing; save snapshots first)"
                .into(),
        );
    }
    if flags.backing_io != hydra::FileIoMode::Pread && !flags.out_of_core {
        return Err(
            "--backing mmap requires --out-of-core (a resident store does no file I/O to \
             transfer differently)"
                .into(),
        );
    }
    Ok(flags)
}

/// [`parse_bench_flags`] over the process arguments; exits with an error
/// message on a malformed invocation.
pub fn bench_flags(threads_allowed: bool) -> BenchFlags {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_bench_flags(&args, threads_allowed) {
        Ok(flags) => flags,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Writes the `--trace-out FILE` stage-breakdown CSV: one row per
/// recorded stage per sweep point, with the stage's call count,
/// wall-clock seconds, and I/O counters — the workload-level view of the
/// same [`hydra_obs::QueryTrace`] the server's slow-query log prints
/// per query. Stages a run never enters (e.g. fan-out in a sequential
/// run) produce no row.
pub struct TraceWriter {
    out: std::io::BufWriter<std::fs::File>,
}

impl TraceWriter {
    /// The header row of the trace CSV.
    pub const HEADER: &'static str =
        "figure,dataset,method,setting,stage,calls,seconds,bytes_read,random_ios,sequential_ios";

    /// Creates (truncating) `path` and writes the header.
    ///
    /// # Errors
    /// The underlying [`std::io::Error`] if the file cannot be created or
    /// written.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        use std::io::Write as _;
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "{}", Self::HEADER)?;
        Ok(Self { out })
    }

    /// Opens the writer a figure binary's flags ask for: `Some` under
    /// `--trace-out FILE` (exiting with an error if the file cannot be
    /// created — a silently traceless run must not masquerade as a traced
    /// one), `None` otherwise.
    pub fn from_flags(flags: &BenchFlags) -> Option<Self> {
        let path = flags.trace_out.as_deref()?;
        match Self::create(path) {
            Ok(writer) => Some(writer),
            Err(e) => {
                eprintln!("error: cannot create --trace-out {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    /// Appends the recorded stages of one sweep point's trace.
    ///
    /// # Errors
    /// The underlying [`std::io::Error`] of a failed write.
    pub fn record(
        &mut self,
        figure: &str,
        dataset: &str,
        method: &str,
        setting: &str,
        trace: &hydra_obs::QueryTrace,
    ) -> std::io::Result<()> {
        use std::io::Write as _;
        for stage in hydra_obs::Stage::ALL {
            let span = trace.span(stage);
            if span.calls == 0 {
                continue;
            }
            writeln!(
                self.out,
                "{figure},{dataset},{method},{setting},{},{},{:.6},{},{},{}",
                stage.name(),
                span.calls,
                span.nanos as f64 / 1e9,
                span.io.bytes_read,
                span.io.random_ios,
                span.io.sequential_ios,
            )?;
        }
        self.out.flush()
    }
}

/// Prints the common CSV header used by all figure binaries.
pub fn print_header() {
    println!("figure,dataset,method,setting,x,y");
}

/// Prints one CSV row of the common schema.
pub fn print_row(figure: &str, dataset: &str, method: &str, setting: &str, x: f64, y: f64) {
    println!("{figure},{dataset},{method},{setting},{x:.4},{y:.4}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_dataset_produces_consistent_bundle() {
        let d = make_dataset("rand256", 200, 32, 5, 1);
        assert_eq!(d.data.len(), 200);
        assert_eq!(d.workload.len(), 20);
        assert_eq!(d.truth.answers.len(), 20);
        assert_eq!(d.truth.k, 5);
        assert_eq!(d.name, "rand256");
    }

    #[test]
    fn build_methods_times_every_build() {
        let d = hydra::data::random_walk(300, 32, 9);
        let methods = build_methods(&d, true, 2);
        assert_eq!(methods.len(), 8);
        for m in &methods {
            assert!(m.build_seconds >= 0.0);
            assert_eq!(m.index.num_series(), 300);
        }
        let disk_methods = build_methods(&d, false, 2);
        assert_eq!(disk_methods.len(), 5);
    }

    #[test]
    fn sweeps_match_capabilities() {
        let d = hydra::data::random_walk(200, 32, 9);
        let dstree = DsTree::build(&d, DsTreeConfig::default()).unwrap();
        let hnsw = Hnsw::build(
            &d,
            HnswConfig {
                m: 4,
                ef_construction: 32,
                seed: 1,
            },
        )
        .unwrap();
        assert!(!sweep_settings(&dstree, 10, true).is_empty());
        assert!(!sweep_settings(&dstree, 10, false).is_empty());
        assert!(sweep_settings(&hnsw, 10, true).is_empty());
        assert!(!sweep_settings(&hnsw, 10, false).is_empty());
    }

    #[test]
    fn scale_defaults_to_one() {
        assert!(scale() >= 1);
    }

    // `bench_flags()` itself reads the live process arguments (and the
    // libtest harness injects its own, e.g. `--quiet`), so the pure
    // `parse_bench_flags` is the tested surface.
    #[test]
    fn parse_bench_flags_accepts_both_spellings_and_rejects_garbage() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_bench_flags(&args(&[]), true), Ok(BenchFlags::default()));
        assert_eq!(parse_bench_flags(&args(&["--threads", "8"]), true).unwrap().threads, 8);
        assert_eq!(parse_bench_flags(&args(&["--threads=8"]), true).unwrap().threads, 8);
        assert!(parse_bench_flags(&args(&["--threads", "eight"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--threads", "-3"]), true).is_err());
        // A typo must not silently run the sequential protocol while the
        // operator believes it is serving.
        assert!(parse_bench_flags(&args(&["-t", "8"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--threads", "2", "extra"]), true).is_err());
        let f = parse_bench_flags(&args(&["--threads", "4", "--save-index", "/tmp/x"]), true)
            .unwrap();
        assert_eq!(f.threads, 4);
        assert_eq!(f.save_index.as_deref(), Some(Path::new("/tmp/x")));
        assert!(f.load_index.is_none());
        let f = parse_bench_flags(&args(&["--load-index=/tmp/y"]), false).unwrap();
        assert_eq!(f.load_index.as_deref(), Some(Path::new("/tmp/y")));
        // Strictness: unknown flags, bad values, duplicates, conflicts, and
        // --threads where there is no query phase are all hard errors.
        assert!(parse_bench_flags(&args(&["--thread", "8"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--threads"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--threads=0"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--threads", "2"]), false).is_err());
        assert!(parse_bench_flags(&args(&["--save-index"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--save-index="]), true).is_err());
        assert!(
            parse_bench_flags(&args(&["--save-index", "/a", "--save-index", "/b"]), true).is_err()
        );
        assert!(parse_bench_flags(
            &args(&["--save-index", "/a", "--load-index", "/b"]),
            true
        )
        .is_err());
        assert!(parse_bench_flags(&args(&["--threads", "2", "--threads", "3"]), true).is_err());
        assert!(parse_bench_flags(&args(&["extra"]), true).is_err());
        // Out-of-core flags: --pool-pages and --out-of-core, both spellings,
        // strict about garbage, and --out-of-core demands snapshots to load.
        let f = parse_bench_flags(
            &args(&["--load-index", "/s", "--out-of-core", "--pool-pages", "2"]),
            true,
        )
        .unwrap();
        assert!(f.out_of_core);
        assert_eq!(f.pool_pages, Some(2));
        assert_eq!(
            parse_bench_flags(&args(&["--pool-pages=0"]), true).unwrap().pool_pages,
            Some(0),
            "a zero-page pool (pure cold-cache) is a legal measurement setup"
        );
        assert!(parse_bench_flags(&args(&["--pool-pages", "few"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--pool-pages"]), true).is_err());
        assert!(
            parse_bench_flags(&args(&["--pool-pages=1", "--pool-pages=2"]), true).is_err()
        );
        assert!(parse_bench_flags(&args(&["--out-of-core"]), true).is_err());
        assert!(parse_bench_flags(
            &args(&["--save-index", "/s", "--out-of-core"]),
            true
        )
        .is_err());
        assert!(parse_bench_flags(
            &args(&["--load-index", "/s", "--out-of-core", "--out-of-core"]),
            true
        )
        .is_err());
        assert!(parse_bench_flags(&args(&["--out-of-core=yes"]), true).is_err());
        // Sharding flag: both spellings, strict about garbage.
        assert_eq!(parse_bench_flags(&args(&[]), true).unwrap().shards, 1);
        assert_eq!(parse_bench_flags(&args(&["--shards", "4"]), true).unwrap().shards, 4);
        assert_eq!(parse_bench_flags(&args(&["--shards=2"]), false).unwrap().shards, 2);
        assert!(parse_bench_flags(&args(&["--shards", "0"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--shards", "two"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--shards"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--shards=2", "--shards=3"]), true).is_err());
        // Ingest-split flag: both spellings, a strict open interval, and
        // mutual exclusion with --load-index (nothing to split there).
        assert_eq!(parse_bench_flags(&args(&[]), true).unwrap().ingest_split, None);
        assert_eq!(
            parse_bench_flags(&args(&["--ingest-split", "0.5"]), true).unwrap().ingest_split,
            Some(0.5)
        );
        assert_eq!(
            parse_bench_flags(&args(&["--ingest-split=0.25"]), false).unwrap().ingest_split,
            Some(0.25)
        );
        assert!(parse_bench_flags(&args(&["--ingest-split", "0"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--ingest-split", "1"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--ingest-split", "-0.5"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--ingest-split", "half"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--ingest-split"]), true).is_err());
        assert!(
            parse_bench_flags(&args(&["--ingest-split=0.5", "--ingest-split=0.6"]), true).is_err()
        );
        assert!(parse_bench_flags(
            &args(&["--load-index", "/s", "--ingest-split", "0.5"]),
            true
        )
        .is_err());
        let f = parse_bench_flags(
            &args(&["--save-index", "/s", "--ingest-split", "0.5"]),
            true,
        )
        .unwrap();
        assert_eq!(f.ingest_split, Some(0.5), "--ingest-split composes with --save-index");
        // Page-codec flag: both spellings, strict values, duplicate
        // rejection, and a non-f32 codec demands snapshots to load (a
        // fresh build never seals its raw tier).
        assert_eq!(
            parse_bench_flags(&args(&[]), true).unwrap().page_codec,
            hydra::PageCodec::F32
        );
        let f = parse_bench_flags(
            &args(&["--load-index", "/s", "--page-codec", "u8"]),
            true,
        )
        .unwrap();
        assert_eq!(f.page_codec, hydra::PageCodec::U8);
        let f = parse_bench_flags(&args(&["--load-index=/s", "--page-codec=f16"]), false).unwrap();
        assert_eq!(f.page_codec, hydra::PageCodec::F16);
        assert_eq!(
            parse_bench_flags(&args(&["--page-codec", "f32"]), true).unwrap().page_codec,
            hydra::PageCodec::F32,
            "an explicit f32 codec is the default and needs no snapshots"
        );
        assert!(parse_bench_flags(&args(&["--page-codec", "u4"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--page-codec"]), true).is_err());
        assert!(parse_bench_flags(
            &args(&["--load-index=/s", "--page-codec=u8", "--page-codec=u8"]),
            true
        )
        .is_err());
        assert!(
            parse_bench_flags(&args(&["--page-codec", "u8"]), true).is_err(),
            "a coded tier without --load-index would silently measure nothing"
        );
        assert!(parse_bench_flags(
            &args(&["--save-index", "/s", "--page-codec", "u8"]),
            true
        )
        .is_err());
        // Backing flag: both spellings, strict values, duplicate
        // rejection, and mmap demands an out-of-core store to transfer
        // from (a resident store does no file I/O).
        assert_eq!(
            parse_bench_flags(&args(&[]), true).unwrap().backing_io,
            hydra::FileIoMode::Pread
        );
        let f = parse_bench_flags(
            &args(&["--load-index", "/s", "--out-of-core", "--backing", "mmap"]),
            true,
        )
        .unwrap();
        assert_eq!(f.backing_io, hydra::FileIoMode::Mmap);
        let f = parse_bench_flags(
            &args(&["--load-index=/s", "--out-of-core", "--backing=mmap"]),
            false,
        )
        .unwrap();
        assert_eq!(f.backing_io, hydra::FileIoMode::Mmap);
        assert_eq!(
            parse_bench_flags(&args(&["--backing", "pread"]), true).unwrap().backing_io,
            hydra::FileIoMode::Pread,
            "an explicit pread backing is the default and needs no store file"
        );
        assert!(parse_bench_flags(&args(&["--backing", "aio"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--backing"]), true).is_err());
        assert!(parse_bench_flags(
            &args(&["--load-index=/s", "--out-of-core", "--backing=mmap", "--backing=mmap"]),
            true
        )
        .is_err());
        assert!(
            parse_bench_flags(&args(&["--backing", "mmap"]), true).is_err(),
            "mmap without --out-of-core has no file to map"
        );
        assert!(parse_bench_flags(
            &args(&["--load-index", "/s", "--backing", "mmap"]),
            true
        )
        .is_err());
        // Trace-out flag: both spellings, strict about garbage.
        assert_eq!(parse_bench_flags(&args(&[]), true).unwrap().trace_out, None);
        let f = parse_bench_flags(&args(&["--trace-out", "/tmp/t.csv"]), true).unwrap();
        assert_eq!(f.trace_out.as_deref(), Some(Path::new("/tmp/t.csv")));
        let f = parse_bench_flags(&args(&["--trace-out=t.csv"]), false).unwrap();
        assert_eq!(f.trace_out.as_deref(), Some(Path::new("t.csv")));
        assert!(parse_bench_flags(&args(&["--trace-out"]), true).is_err());
        assert!(parse_bench_flags(&args(&["--trace-out="]), true).is_err());
        assert!(
            parse_bench_flags(&args(&["--trace-out=a", "--trace-out=b"]), true).is_err()
        );
    }

    #[test]
    fn trace_writer_emits_one_row_per_recorded_stage() {
        let path = std::env::temp_dir().join(format!(
            "hydra-bench-trace-{}.csv",
            std::process::id()
        ));
        let d = make_dataset("rand256", 200, 32, 5, 91);
        let dstree = DsTree::build(&d.data, DsTreeConfig::default()).unwrap();
        let params = SearchParams::ng(5, 8);
        let (_, seq) = run_point_threaded(&dstree, &d, &params, 1);
        let (_, par) = run_point_threaded(&dstree, &d, &params, 3);
        let mut w = TraceWriter::create(&path).unwrap();
        w.record("fig-test", d.name, dstree.name(), "nprobe=8", &seq.trace).unwrap();
        w.record("fig-test", d.name, dstree.name(), "nprobe=8", &par.trace).unwrap();
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], TraceWriter::HEADER);
        // Sequential run: shard_search only. Parallel run: + fan_out.
        let stages: Vec<&str> = lines[1..]
            .iter()
            .map(|l| l.split(',').nth(4).unwrap())
            .collect();
        assert_eq!(stages, vec!["shard_search", "fan_out", "shard_search"]);
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 10, "malformed row {line:?}");
        }
        // The sequential row's calls column is the workload size.
        let calls: u64 = lines[1].split(',').nth(5).unwrap().parse().unwrap();
        assert_eq!(calls, seq.num_queries as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_zoo_keeps_method_names_and_saves_bootable_shard_directories() {
        let dir = std::env::temp_dir().join(format!(
            "hydra-bench-sharded-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let d = make_dataset("rand256", 300, 32, 5, 51);
        let plain = build_or_load_methods(d.name, &d.data, true, 2, &BenchFlags::default());
        let save = BenchFlags {
            shards: 2,
            save_index: Some(dir.clone()),
            ..BenchFlags::default()
        };
        let sharded = build_or_load_methods(d.name, &d.data, true, 2, &save);
        assert_eq!(plain.len(), sharded.len());
        for (p, s) in plain.iter().zip(sharded.iter()) {
            assert_eq!(p.index.name(), s.index.name(), "CSV method names must not change");
            assert_eq!(s.index.num_series(), 300, "sharded view spans the whole dataset");
            assert!(!s.loaded);
        }
        // Each shard directory is a complete bootable snapshot directory:
        // a dataset snapshot plus every method of the scenario.
        for s in 0..2 {
            let shard = dir.join(format!("shard-{s}"));
            assert!(dataset_snapshot_file(&shard, d.name).exists());
            assert!(snapshot_file(&shard, d.name, "dstree").exists());
        }
        // Loading the sharded zoo back reports loaded methods with answers
        // identical to the freshly built sharded zoo.
        let load = BenchFlags {
            shards: 2,
            load_index: Some(dir.clone()),
            ..BenchFlags::default()
        };
        let loaded = build_or_load_methods(d.name, &d.data, true, 2, &load);
        assert!(loaded.iter().all(|m| m.loaded));
        for (b, l) in sharded.iter().zip(loaded.iter()) {
            let params = SearchParams::ng(5, 8);
            let (map_b, rep_b) = run_point(b.index.as_ref(), &d, &params);
            let (map_l, rep_l) = run_point(l.index.as_ref(), &d, &params);
            assert_eq!(map_b, map_l, "{} must answer identically", b.index.name());
            assert_eq!(rep_b.accuracy, rep_l.accuracy);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_core_load_answers_like_the_resident_load() {
        let dir = std::env::temp_dir().join(format!(
            "hydra-bench-ooc-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let d = make_dataset("rand256", 400, 32, 5, 31);
        let save = BenchFlags {
            save_index: Some(dir.clone()),
            ..BenchFlags::default()
        };
        let built = build_or_load_methods(d.name, &d.data, false, 5, &save);
        let resident = BenchFlags {
            load_index: Some(dir.clone()),
            ..BenchFlags::default()
        };
        let resident = build_or_load_methods(d.name, &d.data, false, 5, &resident);
        // A pool of 1 page is far smaller than 400×32×4 bytes of raw data.
        let ooc = BenchFlags {
            load_index: Some(dir.clone()),
            out_of_core: true,
            pool_pages: Some(1),
            ..BenchFlags::default()
        };
        let ooc = build_or_load_methods(d.name, &d.data, false, 5, &ooc);
        assert_eq!(built.len(), ooc.len());
        for ((b, r), o) in built.iter().zip(resident.iter()).zip(ooc.iter()) {
            let params = SearchParams::ng(5, 8);
            let (map_b, rep_b) = run_point(b.index.as_ref(), &d, &params);
            let (map_r, rep_r) = run_point(r.index.as_ref(), &d, &params);
            let (map_o, rep_o) = run_point(o.index.as_ref(), &d, &params);
            assert_eq!(map_b, map_o, "{} out-of-core answers drifted", b.index.name());
            assert_eq!(rep_b.accuracy, rep_o.accuracy);
            assert_eq!(map_r, map_o);
            assert_eq!(rep_r.accuracy, rep_o.accuracy);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn page_codec_zoo_answers_bit_identically_and_reads_fewer_bytes() {
        let dir = std::env::temp_dir().join(format!(
            "hydra-bench-codec-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        // 2 000 × 64 × 4 B = 8 default pages of raw series behind a
        // single-page pool: the genuinely thrashing regime where page
        // traffic, not survivor refinement, dominates `bytes_read`.
        let d = make_dataset("rand256", 2_000, 64, 5, 83);
        let save = BenchFlags {
            save_index: Some(dir.clone()),
            ..BenchFlags::default()
        };
        build_or_load_methods(d.name, &d.data, false, 5, &save);
        let load = |codec| BenchFlags {
            load_index: Some(dir.clone()),
            out_of_core: true,
            pool_pages: Some(1),
            page_codec: codec,
            ..BenchFlags::default()
        };
        let raw = build_or_load_methods(d.name, &d.data, false, 5, &load(hydra::PageCodec::F32));
        let coded = build_or_load_methods(d.name, &d.data, false, 5, &load(hydra::PageCodec::U8));
        assert_eq!(raw.len(), coded.len());
        let mut some_store_compared = false;
        for (r, c) in raw.iter().zip(coded.iter()) {
            assert_eq!(r.index.name(), c.index.name());
            let params = SearchParams::ng(5, 8);
            let (map_r, rep_r) = run_point(r.index.as_ref(), &d, &params);
            let (map_c, rep_c) = run_point(c.index.as_ref(), &d, &params);
            assert_eq!(
                map_r, map_c,
                "{} answers drifted under --page-codec u8",
                r.index.name()
            );
            assert_eq!(rep_r.accuracy, rep_c.accuracy);
            let (Some(rio), Some(cio)) = (r.index.store_counters(), c.index.store_counters())
            else {
                continue;
            };
            some_store_compared = true;
            assert!(
                cio.bytes_read < rio.bytes_read,
                "{}: coded tier read {} bytes, raw {}",
                r.index.name(),
                cio.bytes_read,
                rio.bytes_read
            );
            assert!(cio.compressed_bytes_read > 0, "{}", r.index.name());
            assert_eq!(rio.compressed_bytes_read, 0);
        }
        assert!(some_store_compared, "no disk method exposed store counters");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_split_zoo_matches_the_full_build_in_answers_and_snapshots() {
        let full_dir = std::env::temp_dir().join(format!(
            "hydra-bench-ingest-full-{}",
            std::process::id()
        ));
        let split_dir = std::env::temp_dir().join(format!(
            "hydra-bench-ingest-split-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&full_dir).ok();
        std::fs::remove_dir_all(&split_dir).ok();
        let d = make_dataset("rand256", 300, 32, 5, 77);
        let full_flags = BenchFlags {
            save_index: Some(full_dir.clone()),
            ..BenchFlags::default()
        };
        let full = build_or_load_methods(d.name, &d.data, true, 2, &full_flags);
        let split_flags = BenchFlags {
            save_index: Some(split_dir.clone()),
            ingest_split: Some(0.6),
            ..BenchFlags::default()
        };
        let split = build_or_load_methods(d.name, &d.data, true, 2, &split_flags);
        assert_eq!(full.len(), split.len());
        for (f, s) in full.iter().zip(split.iter()) {
            assert_eq!(f.index.name(), s.index.name());
            assert_eq!(s.index.num_series(), 300, "ingested tail must be searchable");
            let params = SearchParams::ng(5, 8);
            let (map_f, rep_f) = run_point(f.index.as_ref(), &d, &params);
            let (map_s, rep_s) = run_point(s.index.as_ref(), &d, &params);
            assert_eq!(
                map_f,
                map_s,
                "{} grown by ingest answers differently from a full build",
                f.index.name()
            );
            assert_eq!(rep_f.accuracy, rep_s.accuracy);
        }
        // The grown save is a *compacted* base: byte-identical to the
        // snapshot a full build writes, so a later `--load-index` (or a
        // served boot) cannot tell how the index reached its n series.
        for entry in std::fs::read_dir(&full_dir).unwrap() {
            let name = entry.unwrap().file_name();
            let a = std::fs::read(full_dir.join(&name)).unwrap();
            let b = std::fs::read(split_dir.join(&name)).unwrap_or_else(|e| {
                panic!("ingest-split run did not save {name:?}: {e}")
            });
            assert_eq!(a, b, "{name:?} differs between full-build and ingest-split saves");
        }
        std::fs::remove_dir_all(&full_dir).ok();
        std::fs::remove_dir_all(&split_dir).ok();
    }

    #[test]
    fn snapshot_file_names_are_filesystem_safe_and_distinct() {
        let dir = Path::new("/snaps");
        let isax = snapshot_file(dir, "rand256", "isax2+");
        assert_eq!(isax, Path::new("/snaps/rand256-isax2.snap"));
        let va = snapshot_file(dir, "sift-like", "va+file");
        assert_eq!(va, Path::new("/snaps/sift-like-vafile.snap"));
        assert_ne!(isax, snapshot_file(dir, "rand256", "dstree"));
    }

    #[test]
    fn saved_then_loaded_zoo_reports_identical_accuracy() {
        let dir = std::env::temp_dir().join(format!(
            "hydra-bench-snapshots-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let d = make_dataset("rand256", 300, 32, 5, 77);
        let save = BenchFlags {
            save_index: Some(dir.clone()),
            ..BenchFlags::default()
        };
        let built = build_or_load_methods(d.name, &d.data, true, 2, &save);
        assert!(built.iter().all(|m| !m.loaded));
        let load = BenchFlags {
            load_index: Some(dir.clone()),
            ..BenchFlags::default()
        };
        let loaded = build_or_load_methods(d.name, &d.data, true, 2, &load);
        assert_eq!(built.len(), loaded.len());
        assert!(loaded.iter().all(|m| m.loaded));
        for (b, l) in built.iter().zip(loaded.iter()) {
            assert_eq!(b.index.name(), l.index.name());
            let params = SearchParams::ng(5, 8);
            let (map_b, rep_b) = run_point(b.index.as_ref(), &d, &params);
            let (map_l, rep_l) = run_point(l.index.as_ref(), &d, &params);
            assert_eq!(map_b, map_l, "{} must answer identically", b.index.name());
            assert_eq!(rep_b.accuracy, rep_l.accuracy);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threaded_run_point_matches_sequential_accuracy_and_stats() {
        let d = make_dataset("rand256", 300, 32, 5, 21);
        let dstree = DsTree::build(&d.data, DsTreeConfig::default()).unwrap();
        let params = SearchParams::ng(5, 8);
        let (map1, seq) = run_point_threaded(&dstree, &d, &params, 1);
        let (map4, par) = run_point_threaded(&dstree, &d, &params, 4);
        assert_eq!(map1, map4);
        assert_eq!(seq.accuracy, par.accuracy);
        assert_eq!(seq.stats.distance_computations, par.stats.distance_computations);
        assert_eq!(seq.threads, 1);
        assert_eq!(par.threads, 4);
    }
}
