//! # hydra-bench
//!
//! Shared harness utilities for the figure-reproduction binaries
//! (`src/bin/fig*.rs`, `src/bin/table1_taxonomy.rs`) and the Criterion
//! micro/ablation benchmarks (`benches/`).
//!
//! Every binary prints CSV to stdout with the schema
//! `figure,dataset,method,setting,x,y` where `x` is usually the accuracy
//! (MAP) and `y` the efficiency measure of the corresponding figure of the
//! paper (throughput, combined cost, % data accessed, random I/Os, ...).
//! `crates/bench/README.md` records every binary, its flags (including
//! `--threads` for the parallel serving mode) and the expected output
//! shape.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

use hydra::prelude::*;
use hydra::{AnnIndex, Dataset};

/// Scale factor applied to all dataset sizes (override with the
/// `HYDRA_SCALE` environment variable, e.g. `HYDRA_SCALE=4` for a longer,
/// more faithful run).
pub fn scale() -> usize {
    std::env::var("HYDRA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// A dataset prepared for one experiment.
pub struct BenchDataset {
    /// Short name used in CSV output ("rand256", "sift-like", ...).
    pub name: &'static str,
    /// The series collection.
    pub data: Dataset,
    /// Query workload (paper protocol: 100 queries; scaled down here).
    pub workload: hydra::data::QueryWorkload,
    /// Exact answers for the workload.
    pub truth: hydra::data::GroundTruth,
}

/// Builds one named dataset with its workload and ground truth.
pub fn make_dataset(name: &'static str, n: usize, len: usize, k: usize, seed: u64) -> BenchDataset {
    let kind = match name {
        "sift-like" => hydra::data::DatasetKind::SiftLike,
        "deep-like" => hydra::data::DatasetKind::DeepLike,
        "seismic-like" => hydra::data::DatasetKind::SeismicLike,
        "sald-like" => hydra::data::DatasetKind::MriLike,
        _ => hydra::data::DatasetKind::RandomWalk,
    };
    let data = kind.generate(n, len, seed);
    let workload = hydra::data::noisy_queries(&data, 20, &[0.0, 0.1, 0.25], seed ^ 0xABCD);
    let truth = hydra::data::ground_truth(&data, &workload, k);
    BenchDataset {
        name,
        data,
        workload,
        truth,
    }
}

/// The in-memory experiment datasets of Figure 3 (scaled down).
pub fn in_memory_datasets(k: usize) -> Vec<BenchDataset> {
    let s = scale();
    vec![
        make_dataset("rand256", 4_000 * s, 256, k, 1),
        make_dataset("rand-long", 1_000 * s, 1_024, k, 2),
        make_dataset("sift-like", 4_000 * s, 128, k, 3),
        make_dataset("deep-like", 4_000 * s, 96, k, 4),
    ]
}

/// The on-disk experiment datasets of Figure 4 (scaled down).
pub fn on_disk_datasets(k: usize) -> Vec<BenchDataset> {
    let s = scale();
    vec![
        make_dataset("rand256", 8_000 * s, 256, k, 5),
        make_dataset("sift-like", 8_000 * s, 128, k, 6),
        make_dataset("deep-like", 8_000 * s, 96, k, 7),
    ]
}

/// The five datasets of the best-methods comparison (Figure 6).
pub fn best_method_datasets(k: usize) -> Vec<BenchDataset> {
    let s = scale();
    vec![
        make_dataset("rand256", 6_000 * s, 256, k, 11),
        make_dataset("sift-like", 6_000 * s, 128, k, 12),
        make_dataset("deep-like", 6_000 * s, 96, k, 13),
        make_dataset("sald-like", 6_000 * s, 128, k, 14),
        make_dataset("seismic-like", 6_000 * s, 256, k, 15),
    ]
}

/// A method built for an experiment, together with its build cost.
pub struct BuiltMethod {
    /// The index behind the uniform interface.
    pub index: Box<dyn AnnIndex>,
    /// Wall-clock build time in seconds.
    pub build_seconds: f64,
}

/// Builds every method applicable to the scenario, timing each build.
pub fn build_methods(data: &Dataset, in_memory: bool, seed: u64) -> Vec<BuiltMethod> {
    let storage = if in_memory {
        StorageConfig::in_memory()
    } else {
        StorageConfig::on_disk()
    };
    let mut out: Vec<BuiltMethod> = Vec::new();
    let mut push = |index: Box<dyn AnnIndex>, secs: f64| {
        out.push(BuiltMethod {
            index,
            build_seconds: secs,
        })
    };
    let t = Instant::now();
    let dstree = DsTree::build(
        data,
        DsTreeConfig {
            storage,
            seed,
            ..DsTreeConfig::default()
        },
    )
    .expect("DSTree");
    push(Box::new(dstree), t.elapsed().as_secs_f64());

    let t = Instant::now();
    let isax = Isax2Plus::build(
        data,
        IsaxConfig {
            storage,
            seed,
            ..IsaxConfig::default()
        },
    )
    .expect("iSAX2+");
    push(Box::new(isax), t.elapsed().as_secs_f64());

    let t = Instant::now();
    let va = VaPlusFile::build(
        data,
        VaPlusFileConfig {
            storage,
            seed,
            ..VaPlusFileConfig::default()
        },
    )
    .expect("VA+file");
    push(Box::new(va), t.elapsed().as_secs_f64());

    let t = Instant::now();
    let srs = Srs::build(
        data,
        SrsConfig {
            storage,
            seed,
            ..SrsConfig::default()
        },
    )
    .expect("SRS");
    push(Box::new(srs), t.elapsed().as_secs_f64());

    if data.series_len() % 8 == 0 {
        let t = Instant::now();
        let imi = InvertedMultiIndex::build(
            data,
            ImiConfig {
                seed,
                ..ImiConfig::default()
            },
        )
        .expect("IMI");
        push(Box::new(imi), t.elapsed().as_secs_f64());
    }
    if in_memory {
        let t = Instant::now();
        let hnsw = Hnsw::build(
            data,
            HnswConfig {
                m: 8,
                ef_construction: 128,
                seed,
            },
        )
        .expect("HNSW");
        push(Box::new(hnsw), t.elapsed().as_secs_f64());

        let t = Instant::now();
        let qalsh = Qalsh::build(
            data,
            QalshConfig {
                seed,
                ..QalshConfig::default()
            },
        )
        .expect("QALSH");
        push(Box::new(qalsh), t.elapsed().as_secs_f64());

        let t = Instant::now();
        let flann = Flann::build(data, FlannConfig::default()).expect("FLANN");
        push(Box::new(flann), t.elapsed().as_secs_f64());
    }
    out
}

/// The parameter sweep a method uses to trace its efficiency/accuracy curve,
/// mirroring the paper's tuning knobs: `nprobe`/`efs` for ng-approximate
/// methods, ε (at δ = 1) and δ (at small ε) for the methods with guarantees.
pub fn sweep_settings(
    index: &dyn AnnIndex,
    k: usize,
    guarantees: bool,
) -> Vec<(String, SearchParams)> {
    let caps = index.capabilities();
    let mut settings = Vec::new();
    if guarantees && caps.delta_epsilon_approximate {
        for eps in [5.0f32, 2.0, 1.0, 0.5, 0.0] {
            settings.push((format!("eps={eps}"), SearchParams::epsilon(k, eps)));
        }
        for delta in [0.5f32, 0.9, 0.99] {
            settings.push((
                format!("delta={delta}"),
                SearchParams::delta_epsilon(k, delta, 1.0),
            ));
        }
    } else if !guarantees && caps.ng_approximate {
        for nprobe in [1usize, 2, 4, 8, 16, 64, 256] {
            settings.push((format!("nprobe={nprobe}"), SearchParams::ng(k, nprobe)));
        }
    }
    settings
}

/// Runs one sweep point and returns `(map, report)`.
pub fn run_point(
    index: &dyn AnnIndex,
    dataset: &BenchDataset,
    params: &SearchParams,
) -> (f64, hydra::eval::WorkloadReport) {
    run_point_threaded(index, dataset, params, 1)
}

/// Runs one sweep point with `threads` worker threads and returns
/// `(map, report)`.
///
/// One thread uses the paper-faithful sequential protocol
/// ([`hydra::eval::run_workload`]); more than one shards the workload over
/// scoped threads with batched `search_batch` calls
/// ([`hydra::eval::run_workload_parallel`]). Accuracy and cost counters are
/// identical either way; only throughput changes.
pub fn run_point_threaded(
    index: &dyn AnnIndex,
    dataset: &BenchDataset,
    params: &SearchParams,
    threads: usize,
) -> (f64, hydra::eval::WorkloadReport) {
    let report = if threads <= 1 {
        hydra::eval::run_workload(index, &dataset.workload, &dataset.truth, params)
    } else {
        hydra::eval::run_workload_parallel(index, &dataset.workload, &dataset.truth, params, threads)
    };
    (report.accuracy.map, report)
}

/// Parses a `--threads N` (or `--threads=N`) flag from an argument list.
/// Absent flag means 1 worker (the paper's sequential protocol). Anything
/// unusable — a bad value, but also any argument the figure binaries do
/// not know (`--thread`, a typo, a stray positional) — is an error, never
/// a silent fallback: a mistyped invocation must not let sequential
/// numbers masquerade as serving-mode ones.
pub fn parse_threads(args: &[String]) -> std::result::Result<usize, String> {
    let mut threads = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = if arg == "--threads" {
            it.next()
                .ok_or_else(|| "--threads requires a value".to_string())?
                .as_str()
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            v
        } else {
            return Err(format!(
                "unrecognized argument {arg:?} (the figure binaries accept only --threads N)"
            ));
        };
        threads = match value.parse::<usize>() {
            Ok(t) if t > 0 => t,
            _ => return Err(format!("--threads expects a positive integer, got {value:?}")),
        };
    }
    Ok(threads)
}

/// [`parse_threads`] over the process arguments; exits with an error
/// message on a malformed flag.
pub fn threads_flag() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_threads(&args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Prints the common CSV header used by all figure binaries.
pub fn print_header() {
    println!("figure,dataset,method,setting,x,y");
}

/// Prints one CSV row of the common schema.
pub fn print_row(figure: &str, dataset: &str, method: &str, setting: &str, x: f64, y: f64) {
    println!("{figure},{dataset},{method},{setting},{x:.4},{y:.4}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_dataset_produces_consistent_bundle() {
        let d = make_dataset("rand256", 200, 32, 5, 1);
        assert_eq!(d.data.len(), 200);
        assert_eq!(d.workload.len(), 20);
        assert_eq!(d.truth.answers.len(), 20);
        assert_eq!(d.truth.k, 5);
        assert_eq!(d.name, "rand256");
    }

    #[test]
    fn build_methods_times_every_build() {
        let d = hydra::data::random_walk(300, 32, 9);
        let methods = build_methods(&d, true, 2);
        assert_eq!(methods.len(), 8);
        for m in &methods {
            assert!(m.build_seconds >= 0.0);
            assert_eq!(m.index.num_series(), 300);
        }
        let disk_methods = build_methods(&d, false, 2);
        assert_eq!(disk_methods.len(), 5);
    }

    #[test]
    fn sweeps_match_capabilities() {
        let d = hydra::data::random_walk(200, 32, 9);
        let dstree = DsTree::build(&d, DsTreeConfig::default()).unwrap();
        let hnsw = Hnsw::build(
            &d,
            HnswConfig {
                m: 4,
                ef_construction: 32,
                seed: 1,
            },
        )
        .unwrap();
        assert!(!sweep_settings(&dstree, 10, true).is_empty());
        assert!(!sweep_settings(&dstree, 10, false).is_empty());
        assert!(sweep_settings(&hnsw, 10, true).is_empty());
        assert!(!sweep_settings(&hnsw, 10, false).is_empty());
    }

    #[test]
    fn scale_defaults_to_one() {
        assert!(scale() >= 1);
    }

    // `threads_flag()` itself reads the live process arguments (and the
    // libtest harness injects its own, e.g. `--quiet`), so the pure
    // `parse_threads` is the tested surface.
    #[test]
    fn parse_threads_accepts_both_spellings_and_rejects_garbage() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_threads(&args(&[])), Ok(1));
        assert_eq!(parse_threads(&args(&["--threads", "8"])), Ok(8));
        assert_eq!(parse_threads(&args(&["--threads=8"])), Ok(8));
        assert!(parse_threads(&args(&["--threads"])).is_err());
        assert!(parse_threads(&args(&["--threads", "eight"])).is_err());
        assert!(parse_threads(&args(&["--threads=0"])).is_err());
        assert!(parse_threads(&args(&["--threads", "-3"])).is_err());
        // Unknown flags are errors too — a typo must not silently run the
        // sequential protocol while the operator believes it is serving.
        assert!(parse_threads(&args(&["--thread", "8"])).is_err());
        assert!(parse_threads(&args(&["-t", "8"])).is_err());
        assert!(parse_threads(&args(&["--threads", "2", "extra"])).is_err());
    }

    #[test]
    fn threaded_run_point_matches_sequential_accuracy_and_stats() {
        let d = make_dataset("rand256", 300, 32, 5, 21);
        let dstree = DsTree::build(&d.data, DsTreeConfig::default()).unwrap();
        let params = SearchParams::ng(5, 8);
        let (map1, seq) = run_point_threaded(&dstree, &d, &params, 1);
        let (map4, par) = run_point_threaded(&dstree, &d, &params, 4);
        assert_eq!(map1, map4);
        assert_eq!(seq.accuracy, par.accuracy);
        assert_eq!(seq.stats.distance_computations, par.stats.distance_computations);
        assert_eq!(seq.threads, 1);
        assert_eq!(par.threads, 4);
    }
}
