//! Figure 7: effect of k — total workload time for k ∈ {1, 10, 100}
//! ε-approximate queries, in memory and on disk, for the best methods.
//!
//! Paper shape to reproduce: finding the first neighbor dominates the cost;
//! additional neighbors are much cheaper (total time grows slowly with k).

use hydra::prelude::*;
use hydra_bench::{make_dataset, print_header, print_row, scale};

fn main() {
    print_header();
    let s = scale();
    let scenarios = [
        ("rand-mem", "rand256", 4_000 * s, 256, true),
        ("sift-mem", "sift-like", 4_000 * s, 128, true),
        ("deep-mem", "deep-like", 4_000 * s, 96, true),
        ("rand-disk", "rand256", 8_000 * s, 256, false),
        ("sift-disk", "sift-like", 8_000 * s, 128, false),
        ("deep-disk", "deep-like", 8_000 * s, 96, false),
    ];
    for (label, kind, n, len, in_memory) in scenarios {
        let storage = if in_memory {
            StorageConfig::in_memory()
        } else {
            StorageConfig::on_disk()
        };
        for k in [1usize, 10, 100] {
            let dataset = make_dataset(kind, n, len, k, 77);
            let dstree = DsTree::build(
                &dataset.data,
                DsTreeConfig {
                    storage,
                    ..DsTreeConfig::default()
                },
            )
            .expect("DSTree");
            let report = hydra::eval::run_workload(
                &dstree,
                &dataset.workload,
                &dataset.truth,
                &SearchParams::epsilon(k, 1.0),
            );
            print_row(
                "fig7-total-time-vs-k",
                label,
                "DSTree",
                &format!("k={k}"),
                k as f64,
                report.total_seconds,
            );
        }
    }
}
