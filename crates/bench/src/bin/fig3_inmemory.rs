//! Figure 3: in-memory query efficiency vs. accuracy (100-NN queries) on
//! short random walks, long random walks, SIFT-like and Deep-like vectors.
//!
//! For every method and sweep setting the harness emits three series per
//! dataset, matching the paper's panels:
//! * throughput (queries/minute) vs. MAP, for ng-approximate sweeps and for
//!   guarantee-carrying (δ-ε) sweeps;
//! * combined index + 100-query cost vs. MAP;
//! * combined index + 10K-query cost (extrapolated) vs. MAP.
//!
//! Paper shape to reproduce: HNSW has the best ng throughput/accuracy but
//! never reaches MAP = 1; the data-series indexes do. DSTree dominates the
//! δ-ε methods; SRS caps out at moderate MAP; with indexing time included,
//! iSAX2+ wins small workloads and DSTree large ones.
//!
//! Pass `--threads N` to answer each workload with `N` worker threads and
//! batched `search_batch` calls (serving mode). Accuracy and cost counters
//! are unchanged; throughput scales. The default (1) is the paper's
//! sequential protocol.
//!
//! Pass `--save-index DIR` to snapshot every index after its build, or
//! `--load-index DIR` to restore every index from such snapshots and skip
//! the build phase entirely — the combined-cost columns then report the
//! load time instead of a rebuild, and the accuracy columns are identical
//! by the snapshot contract. `HYDRA_GT_CACHE=DIR` additionally caches the
//! exact ground-truth answers.
//!
//! Pass `--shards S` to build every method as a `ShardedIndex` over `S`
//! contiguous shards of each dataset — same method set, same CSV rows,
//! answers merged by (distance, global id). Exact and guarantee-class
//! accuracy is identical to the unsharded run; ng-approximate rows may
//! improve (the effort knob applies per shard).
//!
//! Pass `--trace-out FILE` to additionally write a per-stage breakdown
//! CSV (one row per sweep point per recorded pipeline stage: call count,
//! seconds, and I/O) — where each point's query time actually went.

use hydra_bench::{
    bench_flags, build_or_load_methods, in_memory_datasets, print_header, print_row,
    run_point_threaded, sweep_settings, TraceWriter,
};

fn main() {
    let flags = bench_flags(true);
    let threads = flags.threads;
    let mut tracer = TraceWriter::from_flags(&flags);
    print_header();
    let k = 100;
    for dataset in in_memory_datasets(k) {
        let methods = build_or_load_methods(dataset.name, &dataset.data, true, 3, &flags);
        for built in &methods {
            for guarantees in [false, true] {
                let mode = if guarantees { "delta-eps" } else { "ng" };
                for (setting, params) in sweep_settings(built.index.as_ref(), k, guarantees) {
                    let (map, report) =
                        run_point_threaded(built.index.as_ref(), &dataset, &params, threads);
                    if let Some(w) = tracer.as_mut() {
                        w.record(
                            &format!("fig3-{mode}"),
                            dataset.name,
                            built.index.name(),
                            &setting,
                            &report.trace,
                        )
                        .unwrap_or_else(|e| {
                            eprintln!("error: cannot write --trace-out row: {e}");
                            std::process::exit(2);
                        });
                    }
                    print_row(
                        &format!("fig3-throughput-{mode}"),
                        dataset.name,
                        built.index.name(),
                        &setting,
                        map,
                        report.queries_per_minute,
                    );
                    let idx_plus_100 = built.build_seconds
                        + report.total_seconds / report.num_queries as f64 * 100.0;
                    print_row(
                        &format!("fig3-idx-plus-100q-{mode}"),
                        dataset.name,
                        built.index.name(),
                        &setting,
                        map,
                        idx_plus_100 / 60.0,
                    );
                    let idx_plus_10k = built.build_seconds + report.extrapolated_10k_seconds;
                    print_row(
                        &format!("fig3-idx-plus-10kq-{mode}"),
                        dataset.name,
                        built.index.name(),
                        &setting,
                        map,
                        idx_plus_10k / 60.0,
                    );
                }
            }
        }
    }
}
