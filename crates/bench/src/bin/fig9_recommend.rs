//! Figure 9: the recommendation decision matrix, both as the paper states it
//! and as *measured* on this harness — for each scenario the binary runs the
//! relevant methods and reports which one actually wins, so the matrix can
//! be validated end to end.

use hydra_bench::{build_methods, make_dataset, run_point, scale, sweep_settings};
use hydra::eval::{recommend, Scenario};

fn main() {
    println!("scenario,paper_recommendation,measured_winner,winner_metric");
    let k = 100;
    for in_memory in [true, false] {
        let dataset = make_dataset("rand256", 4_000 * scale(), 256, k, 99);
        let methods = build_methods(&dataset.data, in_memory, 17);
        for needs_guarantees in [false, true] {
            // Measured winner: the method with the highest throughput among
            // those reaching MAP >= 0.9 in the relevant mode.
            let mut best: Option<(String, f64)> = None;
            for built in &methods {
                for (_, params) in sweep_settings(built.index.as_ref(), k, needs_guarantees) {
                    let (map, report) = run_point(built.index.as_ref(), &dataset, &params);
                    if map >= 0.9 {
                        let qpm = report.queries_per_minute;
                        if best.as_ref().map(|(_, b)| qpm > *b).unwrap_or(true) {
                            best = Some((built.index.name().to_string(), qpm));
                        }
                    }
                }
            }
            for small_workload in [true, false] {
                let rec = recommend(Scenario {
                    in_memory,
                    needs_guarantees,
                    small_workload,
                });
                let (winner, qpm) = best.clone().unwrap_or(("n/a".into(), 0.0));
                println!(
                    "{}-{}-{},{},{},{:.1}",
                    if in_memory { "memory" } else { "disk" },
                    if needs_guarantees { "guarantees" } else { "ng" },
                    if small_workload { "small" } else { "large" },
                    rec.method,
                    winner,
                    qpm
                );
            }
        }
    }
}
