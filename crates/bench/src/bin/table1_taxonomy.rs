//! Table 1 / Figure 1: the capability matrix (matching, accuracy
//! guarantees, representation, disk support) of every method in the study,
//! generated from the live `Capabilities` each index reports.

fn main() {
    let data = hydra::data::random_walk(400, 64, 1);
    let methods = hydra::build_all_methods(&data, true, 1);
    println!("method,exact,ng,epsilon,delta_epsilon,representation,disk_resident,streaming_insert");
    for m in &methods {
        let c = m.capabilities();
        println!(
            "{},{},{},{},{},{},{},{}",
            m.name(),
            c.exact,
            c.ng_approximate,
            c.epsilon_approximate,
            c.delta_epsilon_approximate,
            c.representation.name(),
            c.disk_resident,
            c.streaming_insert
        );
    }
}
