//! Figure 4: on-disk query efficiency vs. accuracy (100-NN queries) for the
//! disk-capable methods (DSTree, iSAX2+, VA+file, SRS, IMI), with the
//! simulated buffer pool much smaller than the dataset.
//!
//! Paper shape to reproduce: DSTree and iSAX2+ outperform everything else on
//! both ng and δ-ε queries; IMI is fast but its accuracy collapses; SRS
//! degrades badly on disk; iSAX2+ is competitive when indexing cost matters
//! (small workloads).
//!
//! Pass `--threads N` to answer each workload with `N` worker threads and
//! batched `search_batch` calls (serving mode). Accuracy, CPU counters and
//! `bytes_read` are unchanged; throughput scales; the I/O-operation
//! counters (`random_ios`/`sequential_ios`, count and split — pool hits
//! charge no operation) can shift because the shared buffer pool sees a
//! different access interleaving, as on a real disk. The default (1) is
//! the paper's sequential protocol.
//!
//! Pass `--save-index DIR` to snapshot every index after its build, or
//! `--load-index DIR` to restore every index from such snapshots and skip
//! the build phase entirely — the combined-cost columns then report the
//! load time instead of a rebuild, and the accuracy columns are identical
//! by the snapshot contract. `HYDRA_GT_CACHE=DIR` additionally caches the
//! exact ground-truth answers.
//!
//! Pass `--out-of-core` (with `--load-index`) to serve the raw series from
//! the snapshot files through a real page cache instead of holding them
//! resident, and `--pool-pages N` to bound that cache — the genuinely
//! disk-resident regime of the paper. Answers, accuracy and per-query
//! `QueryStats` are byte-identical to the resident run at any pool size;
//! the store-level `bytes_read`/eviction totals become measurements.
//!
//! Pass `--page-codec u8|f16|f32` (with `--load-index`) to serve the raw
//! series through the quantized page tier: pages hold u8 (or f16) codes
//! with a per-page min/scale header, pruning runs on the fused
//! decode+distance kernels, and every returned distance is refined against
//! the exact f32 series. Accuracy and distance columns are bit-identical
//! to the default `f32` run at any pool size; `bytes_read` drops ~4×
//! (`u8`) or ~2× (`f16`) at equal `--pool-pages`, and the store-level
//! `compressed_bytes_read` counter records the coded traffic — the
//! equal-memory comparison CI diffs.
//!
//! Pass `--ingest-split F` (`0 < F < 1`) to build every index over the
//! first `ceil(F·n)` series only and stream the rest in through
//! `insert_batch` — the streaming-ingest regime. Methods without
//! streaming insert fall back to a full build. Every accuracy column is
//! identical to an unsplit run (the ingest-equivalence contract), and
//! with `--save-index` the saved snapshots are byte-identical too — the
//! diff CI runs to prove live growth loses nothing.
//!
//! Pass `--shards S` to build every method as a `ShardedIndex` over `S`
//! contiguous shards; with `--save-index DIR` each shard writes a complete
//! bootable `DIR/shard-<s>/` directory for one `hydra-serve --shard-role
//! worker`. Exact and guarantee-class accuracy columns are identical to
//! the unsharded run; ng-approximate rows may improve (the effort knob
//! applies per shard).
//!
//! Pass `--trace-out FILE` to additionally write a per-stage breakdown
//! CSV (one row per sweep point per recorded pipeline stage: call count,
//! seconds, and I/O) — where each point's query time actually went.

use hydra_bench::{
    bench_flags, build_or_load_methods, on_disk_datasets, print_header, print_row,
    run_point_threaded, sweep_settings, TraceWriter,
};

fn main() {
    let flags = bench_flags(true);
    let threads = flags.threads;
    let mut tracer = TraceWriter::from_flags(&flags);
    print_header();
    let k = 100;
    for dataset in on_disk_datasets(k) {
        let methods = build_or_load_methods(dataset.name, &dataset.data, false, 5, &flags);
        for built in &methods {
            for guarantees in [false, true] {
                let mode = if guarantees { "delta-eps" } else { "ng" };
                for (setting, params) in sweep_settings(built.index.as_ref(), k, guarantees) {
                    let (map, report) =
                        run_point_threaded(built.index.as_ref(), &dataset, &params, threads);
                    if let Some(w) = tracer.as_mut() {
                        w.record(
                            &format!("fig4-{mode}"),
                            dataset.name,
                            built.index.name(),
                            &setting,
                            &report.trace,
                        )
                        .unwrap_or_else(|e| {
                            eprintln!("error: cannot write --trace-out row: {e}");
                            std::process::exit(2);
                        });
                    }
                    print_row(
                        &format!("fig4-throughput-{mode}"),
                        dataset.name,
                        built.index.name(),
                        &setting,
                        map,
                        report.queries_per_minute,
                    );
                    let idx_plus_100 = built.build_seconds
                        + report.total_seconds / report.num_queries as f64 * 100.0;
                    print_row(
                        &format!("fig4-idx-plus-100q-{mode}"),
                        dataset.name,
                        built.index.name(),
                        &setting,
                        map,
                        idx_plus_100 / 60.0,
                    );
                    let idx_plus_10k = built.build_seconds + report.extrapolated_10k_seconds;
                    print_row(
                        &format!("fig4-idx-plus-10kq-{mode}"),
                        dataset.name,
                        built.index.name(),
                        &setting,
                        map,
                        idx_plus_10k / 60.0,
                    );
                }
            }
        }
    }
}
