//! Figure 2: indexing scalability — (a) index-building time and (b) index
//! memory footprint as the dataset size grows.
//!
//! Paper shape to reproduce: iSAX2+ builds fastest, followed by VA+file and
//! SRS; DSTree is slower; HNSW and IMI are the slowest despite parallelism.
//! DSTree has the smallest footprint, iSAX2+ next; IMI/SRS/VA+file/FLANN are
//! orders of magnitude larger; QALSH and HNSW the largest (they keep raw
//! data or per-point signatures).

use hydra_bench::{build_methods, print_header, print_row, scale};

fn main() {
    print_header();
    let sizes = [1_000usize, 2_000, 4_000, 8_000];
    for &n in &sizes {
        let n = n * scale();
        let data = hydra::data::random_walk(n, 256, 42);
        for built in build_methods(&data, true, 7) {
            print_row(
                "fig2a-indexing-time",
                &format!("rand-{n}"),
                built.index.name(),
                "build",
                n as f64,
                built.build_seconds,
            );
            print_row(
                "fig2b-index-footprint",
                &format!("rand-{n}"),
                built.index.name(),
                "footprint",
                n as f64,
                built.index.memory_footprint() as f64 / (1024.0 * 1024.0),
            );
        }
    }
}
