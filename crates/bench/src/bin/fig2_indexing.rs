//! Figure 2: indexing scalability — (a) index-building time and (b) index
//! memory footprint as the dataset size grows.
//!
//! Paper shape to reproduce: iSAX2+ builds fastest, followed by VA+file and
//! SRS; DSTree is slower; HNSW and IMI are the slowest despite parallelism.
//! DSTree has the smallest footprint, iSAX2+ next; IMI/SRS/VA+file/FLANN are
//! orders of magnitude larger; QALSH and HNSW the largest (they keep raw
//! data or per-point signatures).
//!
//! Pass `--save-index DIR` to snapshot every index right after its timed
//! build, or `--load-index DIR` to skip the builds and report snapshot
//! load times instead — the `fig2a` column then measures restore cost,
//! which is the honest number for a server booting from disk. Snapshot
//! fingerprints cover the dataset content and the build configuration, so
//! the only consumer of a `fig2` snapshot directory is `fig2_indexing
//! --load-index` itself (fig3/fig4 use their own datasets and seeds and
//! keep their own directories). This binary has no query phase, so it
//! takes no `--threads`.

use hydra_bench::{bench_flags, build_or_load_methods, print_header, print_row, scale};

fn main() {
    let flags = bench_flags(false);
    print_header();
    let sizes = [1_000usize, 2_000, 4_000, 8_000];
    for &n in &sizes {
        let n = n * scale();
        let data = hydra::data::random_walk(n, 256, 42);
        let name = format!("rand-{n}");
        for built in build_or_load_methods(&name, &data, true, 7, &flags) {
            print_row(
                if built.loaded {
                    "fig2a-load-time"
                } else {
                    "fig2a-indexing-time"
                },
                &name,
                built.index.name(),
                if built.loaded { "load" } else { "build" },
                n as f64,
                built.build_seconds,
            );
            print_row(
                "fig2b-index-footprint",
                &name,
                built.index.name(),
                "footprint",
                n as f64,
                built.index.memory_footprint() as f64 / (1024.0 * 1024.0),
            );
        }
    }
}
