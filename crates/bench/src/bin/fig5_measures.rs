//! Figure 5: comparison of accuracy measures on a SIFT-like dataset —
//! (a) Avg Recall vs. MAP and (b) MRE vs. MAP, per method.
//!
//! Paper shape to reproduce: recall equals MAP for every method except IMI
//! (which does not re-rank with true distances), and a small MRE can still
//! correspond to a very low MAP (the reason the paper prefers MAP).

use hydra_bench::{build_methods, make_dataset, print_header, print_row, run_point, scale, sweep_settings};

fn main() {
    print_header();
    let k = 100;
    let dataset = make_dataset("sift-like", 5_000 * scale(), 128, k, 55);
    let methods = build_methods(&dataset.data, true, 9);
    for built in &methods {
        for guarantees in [false, true] {
            for (setting, params) in sweep_settings(built.index.as_ref(), k, guarantees) {
                let (map, report) = run_point(built.index.as_ref(), &dataset, &params);
                print_row(
                    "fig5a-recall-vs-map",
                    dataset.name,
                    built.index.name(),
                    &setting,
                    map,
                    report.accuracy.avg_recall,
                );
                print_row(
                    "fig5b-mre-vs-map",
                    dataset.name,
                    built.index.name(),
                    &setting,
                    map,
                    report.accuracy.mre,
                );
            }
        }
    }
}
