//! Load generator for `hydra-serve`: replays the figure workloads against
//! a running server and emits the same CSV schema as `fig3_inmemory` /
//! `fig4_ondisk`, so the serving path can be diffed against the offline
//! path column for column.
//!
//! ```text
//! serve_client --addr HOST:PORT [--scenario fig4|fig3] [--connections N]
//!              [--connect-timeout-ms N] [--reload] [--shutdown]
//! ```
//!
//! `--reload` asks the server to hot-reload its snapshot directory
//! **before** the replay (and before the capability listing, so the plan
//! reflects the post-reload zoo): the server re-boots its snapshots —
//! journals replayed, ingested series included — and swaps them in
//! atomically without dropping this or any other live connection. The
//! acknowledged epoch is printed to stderr; a refused reload exits 2.
//!
//! For every scenario dataset, every served index belonging to it, and
//! every sweep setting the offline figure would run
//! (`sweep_settings_for`, planned from the server's own capability
//! listing), the whole workload is replayed through `--connections`
//! concurrent client connections (concurrency is what gives the server's
//! micro-batcher something to batch) and scored against the locally
//! recomputed ground truth. Output rows:
//!
//! ```text
//! serve-throughput-{ng|delta-eps}  x = MAP   y = queries/minute
//! serve-p50-ms-{ng|delta-eps}      x = MAP   y = wire-level p50 latency (ms)
//! serve-p95-ms-{ng|delta-eps}      x = MAP   y = wire-level p95 latency (ms)
//! serve-p99-ms-{ng|delta-eps}      x = MAP   y = wire-level p99 latency (ms)
//! ```
//!
//! The `serve-throughput-*` MAP column must be **identical** to the
//! offline `fig{3,4}-throughput-*` MAP column for the same
//! dataset/method/setting — that is the serving-correctness contract CI
//! enforces. Any server-side error response, protocol error, or missing
//! answer exits 2: a divergence must fail the run, not skew a row.

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

use hydra::eval::{average_precision, mean_relative_error, recall, AccuracySummary, LatencyPercentiles};
use hydra::{Neighbor, SearchParams};
use hydra_bench::{
    in_memory_datasets, on_disk_datasets, print_header, print_row, sweep_settings_for,
    BenchDataset,
};
use hydra_serve::{dataset_for_index, IndexInfo, Request, ResponseBody, ServeClient};

#[derive(Debug, Clone, PartialEq)]
struct Args {
    addr: String,
    fig3: bool,
    connections: usize,
    connect_timeout: Duration,
    reload: bool,
    shutdown: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: String::new(),
            fig3: false,
            connections: 4,
            connect_timeout: Duration::from_secs(30),
            reload: false,
            shutdown: false,
        }
    }
}

/// Strict flag parsing in the house style (scaffolding shared with the
/// `hydra-serve` binary via `hydra_serve::cli`).
fn parse_args(args: &[String]) -> Result<Args, String> {
    use hydra_serve::cli::{once, value_of as cli_value_of};
    let mut out = Args::default();
    let mut seen: Vec<&'static str> = Vec::new();
    let mut addr_given = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &'static str| cli_value_of(arg, name, &mut it);
        if let Some(value) = value_of("--addr") {
            once("--addr", &mut seen)?;
            let value = value?;
            if value.is_empty() {
                return Err("--addr expects HOST:PORT".into());
            }
            out.addr = value;
            addr_given = true;
        } else if let Some(value) = value_of("--scenario") {
            once("--scenario", &mut seen)?;
            out.fig3 = match value?.as_str() {
                "fig3" => true,
                "fig4" => false,
                other => return Err(format!("--scenario expects fig3 or fig4, got {other:?}")),
            };
        } else if let Some(value) = value_of("--connections") {
            once("--connections", &mut seen)?;
            let value = value?;
            out.connections = match value.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    return Err(format!(
                        "--connections expects a positive integer, got {value:?}"
                    ))
                }
            };
        } else if let Some(value) = value_of("--connect-timeout-ms") {
            once("--connect-timeout-ms", &mut seen)?;
            let value = value?;
            let ms: u64 = value
                .parse()
                .map_err(|_| format!("--connect-timeout-ms expects an integer, got {value:?}"))?;
            out.connect_timeout = Duration::from_millis(ms);
        } else if arg == "--reload" {
            once("--reload", &mut seen)?;
            out.reload = true;
        } else if arg == "--shutdown" {
            once("--shutdown", &mut seen)?;
            out.shutdown = true;
        } else {
            return Err(format!(
                "unrecognized argument {arg:?} (accepted: --addr HOST:PORT, \
                 --scenario fig3|fig4, --connections N, --connect-timeout-ms N, --reload, \
                 --shutdown)"
            ));
        }
    }
    if !addr_given {
        return Err("--addr HOST:PORT is required".into());
    }
    Ok(out)
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Replays every query of `dataset`'s workload against `index_name`
/// through `connections` concurrent connections; returns the answers in
/// workload order, each with its wire-level latency in seconds, plus the
/// total wall-clock seconds.
fn replay(
    addr: SocketAddr,
    index_name: &str,
    params: &SearchParams,
    dataset: &BenchDataset,
    connections: usize,
) -> (Vec<(Vec<Neighbor>, f64)>, f64) {
    let queries: Vec<&[f32]> = dataset.workload.iter().collect();
    let n = queries.len();
    let connections = connections.max(1).min(n.max(1));
    let chunk = n.div_ceil(connections).max(1);
    let started = Instant::now();
    let mut merged: Vec<Option<(Vec<Neighbor>, f64)>> = vec![None; n];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, shard) in queries.chunks(chunk).enumerate() {
            let handle = scope.spawn(move || {
                let mut client = ServeClient::connect(addr)
                    .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
                let mut answers = Vec::with_capacity(shard.len());
                for (i, query) in shard.iter().enumerate() {
                    let request_id = (c * chunk + i + 1) as u64;
                    let t0 = Instant::now();
                    let response = client
                        .call(&Request::Query {
                            request_id,
                            index: index_name.to_string(),
                            params: *params,
                            query: query.to_vec(),
                        })
                        .unwrap_or_else(|e| {
                            fail(&format!("query {request_id} against {index_name}: {e}"))
                        });
                    let latency = t0.elapsed().as_secs_f64();
                    match response.body {
                        ResponseBody::Answer { neighbors } => answers.push((neighbors, latency)),
                        ResponseBody::Error { code, message } => fail(&format!(
                            "server answered query {request_id} against {index_name} with \
                             {code:?}: {message}"
                        )),
                        other => fail(&format!(
                            "unexpected response body {other:?} to query {request_id}"
                        )),
                    }
                }
                (c, answers)
            });
            handles.push(handle);
        }
        for handle in handles {
            let (c, answers) = handle.join().expect("replay connection panicked");
            for (i, answer) in answers.into_iter().enumerate() {
                merged[c * chunk + i] = Some(answer);
            }
        }
    });
    let total_seconds = started.elapsed().as_secs_f64();
    let answers = merged
        .into_iter()
        .enumerate()
        .map(|(q, a)| a.unwrap_or_else(|| fail(&format!("query {q} was never answered"))))
        .collect();
    (answers, total_seconds)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => fail(&msg),
    };
    let addr: SocketAddr = args
        .addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
        .unwrap_or_else(|| fail(&format!("cannot resolve {:?}", args.addr)));
    let mut control = ServeClient::connect_with_retry(addr, args.connect_timeout)
        .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
    if args.reload {
        let epoch = control
            .reload()
            .unwrap_or_else(|e| fail(&format!("hot reload was refused: {e}")));
        eprintln!("serve_client: server hot-reloaded to epoch {epoch}");
    }
    let infos: Vec<IndexInfo> = control
        .list_indexes()
        .unwrap_or_else(|e| fail(&format!("cannot list indexes: {e}")));
    if infos.is_empty() {
        fail("the server serves no indexes");
    }
    let k = 100;
    let datasets = if args.fig3 {
        in_memory_datasets(k)
    } else {
        on_disk_datasets(k)
    };
    print_header();
    let mut replayed = 0usize;
    for dataset in &datasets {
        // Match served indexes to datasets by the same longest-prefix
        // rule the server's boot scan uses.
        for info in infos.iter().filter(|info| {
            dataset_for_index(&info.name, datasets.iter().map(|d| d.name))
                == Some(dataset.name)
        }) {
            if info.series_len as usize != dataset.data.series_len()
                || info.num_series as usize != dataset.data.len()
            {
                fail(&format!(
                    "served index {} has shape {}x{}, the {} scenario expects {}x{} — \
                     wrong snapshot directory or HYDRA_SCALE?",
                    info.name,
                    info.num_series,
                    info.series_len,
                    dataset.name,
                    dataset.data.len(),
                    dataset.data.series_len()
                ));
            }
            let caps = info.capabilities();
            for guarantees in [false, true] {
                let mode = if guarantees { "delta-eps" } else { "ng" };
                for (setting, params) in sweep_settings_for(&caps, k, guarantees) {
                    let (answers, total_seconds) =
                        replay(addr, &info.name, &params, dataset, args.connections);
                    replayed += answers.len();
                    let per_query: Vec<(f64, f64, f64)> = answers
                        .iter()
                        .enumerate()
                        .map(|(q, (neighbors, _))| {
                            let truth = &dataset.truth.answers[q];
                            (
                                recall(neighbors, truth),
                                average_precision(neighbors, truth),
                                mean_relative_error(neighbors, truth),
                            )
                        })
                        .collect();
                    let accuracy = AccuracySummary::from_queries(&per_query);
                    let latencies: Vec<f64> = answers.iter().map(|(_, l)| *l).collect();
                    let tail = LatencyPercentiles::from_times(&latencies);
                    let qpm = if total_seconds > 0.0 {
                        answers.len() as f64 / total_seconds * 60.0
                    } else {
                        f64::INFINITY
                    };
                    print_row(
                        &format!("serve-throughput-{mode}"),
                        dataset.name,
                        &info.method,
                        &setting,
                        accuracy.map,
                        qpm,
                    );
                    for (figure, seconds) in [
                        ("serve-p50-ms", tail.p50_seconds),
                        ("serve-p95-ms", tail.p95_seconds),
                        ("serve-p99-ms", tail.p99_seconds),
                    ] {
                        print_row(
                            &format!("{figure}-{mode}"),
                            dataset.name,
                            &info.method,
                            &setting,
                            accuracy.map,
                            seconds * 1e3,
                        );
                    }
                }
            }
        }
    }
    if replayed == 0 {
        fail(&format!(
            "no served index matches any {} dataset (served: {})",
            if args.fig3 { "fig3" } else { "fig4" },
            infos
                .iter()
                .map(|i| i.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    if args.shutdown {
        control
            .shutdown()
            .unwrap_or_else(|e| fail(&format!("shutdown was not acknowledged: {e}")));
    }
    eprintln!("serve_client: replayed {replayed} queries against {addr}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parser_accepts_both_spellings_and_rejects_garbage() {
        let a = parse_args(&args(&["--addr", "127.0.0.1:7878"])).unwrap();
        assert!(!a.fig3 && !a.shutdown && !a.reload);
        assert_eq!(a.connections, 4);
        let a = parse_args(&args(&[
            "--addr=h:1",
            "--scenario=fig3",
            "--connections=8",
            "--connect-timeout-ms=500",
            "--reload",
            "--shutdown",
        ]))
        .unwrap();
        assert!(a.fig3 && a.shutdown && a.reload);
        assert_eq!(a.connections, 8);
        assert_eq!(a.connect_timeout, Duration::from_millis(500));
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--addr"])).is_err());
        assert!(parse_args(&args(&["--addr", "h:1", "--scenario", "fig9"])).is_err());
        assert!(parse_args(&args(&["--addr", "h:1", "--connections", "0"])).is_err());
        assert!(parse_args(&args(&["--addr", "h:1", "--shutdown", "--shutdown"])).is_err());
        assert!(parse_args(&args(&["--addr", "h:1", "--reload", "--reload"])).is_err());
        assert!(parse_args(&args(&["--addr", "h:1", "--reload=now"])).is_err());
        assert!(parse_args(&args(&["--addr", "h:1", "--threads", "2"])).is_err());
    }
}
