//! Figure 6: the best-performing disk methods (DSTree vs. iSAX2+), compared
//! on five datasets under an ε sweep (ε-approximate 100-NN queries):
//! queries/minute, percentage of data accessed, and number of random I/Os,
//! all as a function of the achieved MAP.
//!
//! Paper shape to reproduce: DSTree wins most datasets; iSAX2+ incurs more
//! random I/Os (more, emptier leaves) and edges out DSTree only on the
//! SALD-like dataset at moderate accuracies.

use hydra::prelude::*;
use hydra_bench::{best_method_datasets, print_header, print_row, run_point};

fn main() {
    print_header();
    let k = 100;
    for dataset in best_method_datasets(k) {
        let dstree = DsTree::build(
            &dataset.data,
            DsTreeConfig {
                storage: StorageConfig::on_disk(),
                ..DsTreeConfig::default()
            },
        )
        .expect("DSTree");
        let isax = Isax2Plus::build(
            &dataset.data,
            IsaxConfig {
                storage: StorageConfig::on_disk(),
                ..IsaxConfig::default()
            },
        )
        .expect("iSAX2+");
        let total_bytes = dstree.store().total_bytes();

        for eps in [5.0f32, 2.0, 1.0, 0.5, 0.0] {
            let params = SearchParams::epsilon(k, eps);
            for (name, index) in [("DSTree", &dstree as &dyn hydra::AnnIndex), ("iSAX2+", &isax)] {
                let (map, report) = run_point(index, &dataset, &params);
                print_row(
                    "fig6-queries-per-min",
                    dataset.name,
                    name,
                    &format!("eps={eps}"),
                    map,
                    report.queries_per_minute,
                );
                print_row(
                    "fig6-pct-data-accessed",
                    dataset.name,
                    name,
                    &format!("eps={eps}"),
                    map,
                    report.fraction_data_accessed(total_bytes) * 100.0,
                );
                print_row(
                    "fig6-random-io",
                    dataset.name,
                    name,
                    &format!("eps={eps}"),
                    map,
                    report.random_ios_per_query(),
                );
            }
        }
    }
}
