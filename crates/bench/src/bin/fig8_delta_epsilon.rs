//! Figure 8: sensitivity of the extended data-series methods to ε and δ.
//!
//! * (a–c) ε sweep at δ = 1: throughput rises dramatically with ε, MAP stays
//!   near 1 until ε ≈ 2 then drops, and the measured MRE stays far below the
//!   user-tolerated ε.
//! * (d–e) δ sweep at ε = 0: throughput and accuracy stay flat until δ
//!   approaches 1, where search becomes exact (the histogram-based r_δ stop
//!   condition rarely fires — the paper's "ineffectiveness of δ" finding).

use hydra::prelude::*;
use hydra_bench::{make_dataset, print_header, print_row, run_point, scale};

fn main() {
    print_header();
    let k = 100;
    let dataset = make_dataset("rand256", 6_000 * scale(), 256, k, 88);
    let dstree = DsTree::build(&dataset.data, DsTreeConfig::default()).expect("DSTree");
    let isax = Isax2Plus::build(&dataset.data, IsaxConfig::default()).expect("iSAX2+");

    // (a-c) epsilon sweep at delta = 1.
    for eps in [0.0f32, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        for (name, index) in [("DSTree", &dstree as &dyn hydra::AnnIndex), ("iSAX2+", &isax)] {
            let (map, report) = run_point(index, &dataset, &SearchParams::epsilon(k, eps));
            print_row("fig8a-throughput-vs-eps", dataset.name, name, "delta=1", eps as f64, report.queries_per_minute);
            print_row("fig8b-map-vs-eps", dataset.name, name, "delta=1", eps as f64, map);
            print_row("fig8c-mre-vs-eps", dataset.name, name, "delta=1", eps as f64, report.accuracy.mre);
        }
    }

    // (d-e) delta sweep at epsilon = 0.
    for delta in [0.2f32, 0.4, 0.6, 0.8, 0.9, 0.99, 1.0] {
        for (name, index) in [("DSTree", &dstree as &dyn hydra::AnnIndex), ("iSAX2+", &isax)] {
            let params = SearchParams::delta_epsilon(k, delta, 0.0);
            let (map, report) = run_point(index, &dataset, &params);
            print_row("fig8d-throughput-vs-delta", dataset.name, name, "eps=0", delta as f64, report.queries_per_minute);
            print_row("fig8e-map-vs-delta", dataset.name, name, "eps=0", delta as f64, map);
        }
    }
}
