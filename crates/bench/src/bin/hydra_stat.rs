//! `hydra_stat`: a `top`-style live view of a running `hydra-serve`
//! server (or router), built on the stats frame of the serving protocol.
//!
//! ```text
//! hydra_stat --addr HOST:PORT            # refresh every 2 s until Ctrl-C
//! hydra_stat --addr HOST:PORT --once     # one scrape to stdout, then exit
//! hydra_stat --addr HOST:PORT --interval-ms 500
//! ```
//!
//! Each refresh opens one `Stats` request over the existing connection and
//! prints the returned Prometheus text exposition verbatim — `hydra_stat`
//! adds no interpretation beyond a screen clear and a timestamp header, so
//! what it shows is exactly what a real scraper would ingest. `--once`
//! (scrape to stdout, no screen control) is the scriptable spelling the CI
//! observability smoke uses.
//!
//! Diagnostics go to stderr; scraped text goes to stdout.

use std::time::Duration;

use hydra_serve::ServeClient;

struct Args {
    addr: String,
    once: bool,
    interval: Duration,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut addr: Option<String> = None;
    let mut once = false;
    let mut interval = Duration::from_secs(2);
    let mut interval_seen = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| -> Option<Result<String, String>> {
            if arg == name {
                Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} requires a value")),
                )
            } else {
                arg.strip_prefix(&format!("{name}=")).map(|v| Ok(v.to_string()))
            }
        };
        if let Some(value) = value_of("--addr") {
            if addr.is_some() {
                return Err("--addr given more than once".into());
            }
            let value = value?;
            if value.is_empty() {
                return Err("--addr expects HOST:PORT".into());
            }
            addr = Some(value);
        } else if arg == "--once" {
            if once {
                return Err("--once given more than once".into());
            }
            once = true;
        } else if let Some(value) = value_of("--interval-ms") {
            if interval_seen {
                return Err("--interval-ms given more than once".into());
            }
            interval_seen = true;
            let value = value?;
            interval = match value.parse::<u64>() {
                Ok(ms) if ms > 0 => Duration::from_millis(ms),
                _ => {
                    return Err(format!(
                        "--interval-ms expects a positive integer, got {value:?}"
                    ))
                }
            };
        } else {
            return Err(format!(
                "unrecognized argument {arg:?} (accepted: --addr HOST:PORT, --once, \
                 --interval-ms N)"
            ));
        }
    }
    let addr = addr.ok_or("--addr HOST:PORT is required")?;
    if once && interval_seen {
        return Err("--interval-ms is meaningless with --once".into());
    }
    Ok(Args {
        addr,
        once,
        interval,
    })
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let mut client = match ServeClient::connect(args.addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: cannot connect to {}: {e}", args.addr);
            std::process::exit(2);
        }
    };
    let mut scrapes: u64 = 0;
    loop {
        let text = match client.stats() {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: stats scrape of {} failed: {e}", args.addr);
                std::process::exit(2);
            }
        };
        scrapes += 1;
        if args.once {
            print!("{text}");
            return;
        }
        // ANSI clear + home, like `top` — the exposition itself is
        // printed untouched below the header line.
        print!("\x1b[2J\x1b[H");
        println!(
            "hydra_stat: {} (scrape #{scrapes}, every {:?}; Ctrl-C to quit)",
            args.addr, args.interval
        );
        println!();
        print!("{text}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        std::thread::sleep(args.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parser_is_strict_about_flags() {
        let a = parse_args(&args(&["--addr", "127.0.0.1:7878"])).unwrap();
        assert_eq!(a.addr, "127.0.0.1:7878");
        assert!(!a.once);
        assert_eq!(a.interval, Duration::from_secs(2));
        let a = parse_args(&args(&["--addr=h:1", "--once"])).unwrap();
        assert!(a.once);
        let a = parse_args(&args(&["--addr=h:1", "--interval-ms=500"])).unwrap();
        assert_eq!(a.interval, Duration::from_millis(500));
        assert!(parse_args(&args(&[])).is_err(), "--addr is required");
        assert!(parse_args(&args(&["--addr"])).is_err());
        assert!(parse_args(&args(&["--addr="])).is_err());
        assert!(parse_args(&args(&["--addr=h:1", "--addr=h:2"])).is_err());
        assert!(parse_args(&args(&["--addr=h:1", "--interval-ms", "0"])).is_err());
        assert!(parse_args(&args(&["--addr=h:1", "--interval-ms", "soon"])).is_err());
        assert!(parse_args(&args(&["--addr=h:1", "--once", "--once"])).is_err());
        assert!(parse_args(&args(&["--addr=h:1", "--once", "--interval-ms=5"])).is_err());
        assert!(parse_args(&args(&["--addr=h:1", "--top"])).is_err());
    }
}
