//! Criterion micro-benchmarks of the computational kernels every index is
//! built on: distance computation, summarization and quantization.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hydra::summarize::apca::{segment_stats, uniform_segments, Segment};
use hydra::summarize::quantization::{KMeans, ProductQuantizer, ScalarQuantizer};
use hydra::summarize::sax::{normal_breakpoints, sax_word, SaxParams};
use hydra::summarize::{paa, DftSummarizer, GaussianProjection};

fn series(seed: u64, n: usize) -> Vec<f32> {
    let d = hydra::data::random_walk(1, n, seed);
    d.series(0).to_vec()
}

fn bench_distances(c: &mut Criterion) {
    let a = series(1, 256);
    let b = series(2, 256);
    let mut group = c.benchmark_group("distance");
    group.sample_size(30);
    group.bench_function("euclidean-256", |bench| {
        bench.iter(|| std::hint::black_box(hydra::core::euclidean(&a, &b)))
    });
    group.bench_function("early-abandon-256-tight", |bench| {
        bench.iter(|| std::hint::black_box(hydra::core::euclidean_early_abandon(&a, &b, 0.5)))
    });
    group.bench_function("early-abandon-256-loose", |bench| {
        bench.iter(|| {
            std::hint::black_box(hydra::core::euclidean_early_abandon(&a, &b, f32::INFINITY))
        })
    });
    group.finish();
}

/// The compressed page tier's fused decode+distance kernels against their
/// decode-into-a-scratch-buffer equivalent. The fused path's edge is
/// abandonment: it never decodes positions past the abandon point, so
/// under a tight bound (the refinement regime — most candidates abandon
/// early) it skips almost all decode work, while the loose-bound case
/// pays for fusion with a less vectorizable loop. The page tier's win is
/// bytes moved either way; these numbers locate the CPU crossover.
fn bench_fused_quantized(c: &mut Criterion) {
    let query = series(4, 256);
    let target = series(5, 256);
    let (lo, hi) = target.iter().fold((f32::MAX, f32::MIN), |(lo, hi), &v| {
        (lo.min(v), hi.max(v))
    });
    let scale = ((hi - lo) / 255.0).max(f32::MIN_POSITIVE);
    let min = lo;
    let u8_codes: Vec<u8> = target
        .iter()
        .map(|&v| (((v - min) / scale).round() as i64).clamp(0, 255) as u8)
        .collect();
    let f16_codes: Vec<u16> = target
        .iter()
        .map(|&v| hydra::core::f16_bits_from_f32(v))
        .collect();
    let mut group = c.benchmark_group("fused-quantized");
    group.sample_size(30);
    group.bench_function("fused-u8-256-loose", |bench| {
        bench.iter(|| {
            std::hint::black_box(hydra::core::euclidean_early_abandon_u8(
                &query,
                &u8_codes,
                min,
                scale,
                f32::INFINITY,
            ))
        })
    });
    group.bench_function("fused-u8-256-tight", |bench| {
        bench.iter(|| {
            std::hint::black_box(hydra::core::euclidean_early_abandon_u8(
                &query, &u8_codes, min, scale, 0.5,
            ))
        })
    });
    group.bench_function("fused-f16-256-loose", |bench| {
        bench.iter(|| {
            std::hint::black_box(hydra::core::euclidean_early_abandon_f16(
                &query,
                &f16_codes,
                f32::INFINITY,
            ))
        })
    });
    group.bench_function("decode-then-kernel-u8-256", |bench| {
        bench.iter(|| {
            let decoded: Vec<f32> = u8_codes.iter().map(|&c| min + c as f32 * scale).collect();
            std::hint::black_box(hydra::core::euclidean_early_abandon(
                &query,
                &decoded,
                f32::INFINITY,
            ))
        })
    });
    group.finish();
}

fn bench_summarizations(c: &mut Criterion) {
    let s = series(3, 256);
    let params = SaxParams::default();
    let breakpoints = normal_breakpoints(params.max_cardinality());
    let dft = DftSummarizer::new(256, 8);
    let proj = GaussianProjection::new(256, 16, 7);
    let segments = uniform_segments(256, 16);
    let mut group = c.benchmark_group("summarization");
    group.sample_size(30);
    group.bench_function("paa-256-to-16", |bench| {
        bench.iter(|| std::hint::black_box(paa(&s, 16)))
    });
    group.bench_function("sax-word-256", |bench| {
        bench.iter(|| std::hint::black_box(sax_word(&s, &params, &breakpoints)))
    });
    group.bench_function("dft-256-to-8", |bench| {
        bench.iter(|| std::hint::black_box(dft.transform(&s)))
    });
    group.bench_function("gaussian-projection-256-to-16", |bench| {
        bench.iter(|| std::hint::black_box(proj.project(&s)))
    });
    group.bench_function("eapca-stats-16-segments", |bench| {
        bench.iter(|| {
            let stats: Vec<_> = segments
                .iter()
                .map(|seg: &Segment| segment_stats(&s, *seg))
                .collect();
            std::hint::black_box(stats)
        })
    });
    group.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let data = hydra::data::sift_like(512, 32, 5);
    let refs: Vec<&[f32]> = data.iter().collect();
    let sq = ScalarQuantizer::train(&refs, 4);
    let pq = ProductQuantizer::train(&refs, 4, 32, 10, 1);
    let km = KMeans::fit(&refs, 32, 10, 1);
    let query = data.series(0).to_vec();
    let code = pq.encode(data.series(1));
    let table = pq.distance_table(&query);
    let mut group = c.benchmark_group("quantization");
    group.sample_size(30);
    group.bench_function("scalar-encode-32d", |bench| {
        bench.iter(|| std::hint::black_box(sq.encode(&query)))
    });
    group.bench_function("pq-encode-32d", |bench| {
        bench.iter(|| std::hint::black_box(pq.encode(&query)))
    });
    group.bench_function("pq-adc-distance", |bench| {
        bench.iter(|| std::hint::black_box(ProductQuantizer::adc_distance(&table, &code)))
    });
    group.bench_function("kmeans-assign-32d-k32", |bench| {
        bench.iter(|| std::hint::black_box(km.assign(&query)))
    });
    group.bench_function("pq-distance-table", |bench| {
        bench.iter_batched(
            || query.clone(),
            |q| std::hint::black_box(pq.distance_table(&q)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_distances,
    bench_fused_quantized,
    bench_summarizations,
    bench_quantization
);
criterion_main!(benches);
