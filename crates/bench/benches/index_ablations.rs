//! Criterion ablation benchmarks for the design choices DESIGN.md calls
//! out: DSTree leaf capacity, iSAX segment count, VA+file quantization bits,
//! and HNSW connectivity — each measured by the cost of an ε-approximate (or
//! ng-approximate) 10-NN query on the same random-walk dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra::prelude::*;
use hydra::summarize::sax::SaxParams;

fn dataset() -> hydra::Dataset {
    hydra::data::random_walk(2_000, 128, 1234)
}

fn query() -> Vec<f32> {
    hydra::data::random_walk(1, 128, 4321).series(0).to_vec()
}

fn bench_dstree_leaf_capacity(c: &mut Criterion) {
    let data = dataset();
    let q = query();
    let mut group = c.benchmark_group("ablation-dstree-leaf-capacity");
    group.sample_size(20);
    for capacity in [32usize, 128, 512] {
        let index = DsTree::build(
            &data,
            DsTreeConfig {
                leaf_capacity: capacity,
                storage: StorageConfig::in_memory(),
                ..DsTreeConfig::default()
            },
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(capacity), &index, |b, idx| {
            b.iter(|| std::hint::black_box(idx.search(&q, &SearchParams::epsilon(10, 1.0)).unwrap()))
        });
    }
    group.finish();
}

fn bench_isax_segments(c: &mut Criterion) {
    let data = dataset();
    let q = query();
    let mut group = c.benchmark_group("ablation-isax-segments");
    group.sample_size(20);
    for segments in [8usize, 16, 32] {
        let index = Isax2Plus::build(
            &data,
            IsaxConfig {
                sax: SaxParams::new(segments, 8),
                storage: StorageConfig::in_memory(),
                ..IsaxConfig::default()
            },
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(segments), &index, |b, idx| {
            b.iter(|| std::hint::black_box(idx.search(&q, &SearchParams::epsilon(10, 1.0)).unwrap()))
        });
    }
    group.finish();
}

fn bench_vafile_bits(c: &mut Criterion) {
    let data = dataset();
    let q = query();
    let mut group = c.benchmark_group("ablation-vafile-bits");
    group.sample_size(20);
    for bits in [2u8, 4, 6] {
        let index = VaPlusFile::build(
            &data,
            VaPlusFileConfig {
                bits_per_dim: bits,
                storage: StorageConfig::in_memory(),
                ..VaPlusFileConfig::default()
            },
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(bits), &index, |b, idx| {
            b.iter(|| std::hint::black_box(idx.search(&q, &SearchParams::epsilon(10, 1.0)).unwrap()))
        });
    }
    group.finish();
}

fn bench_hnsw_connectivity(c: &mut Criterion) {
    let data = dataset();
    let q = query();
    let mut group = c.benchmark_group("ablation-hnsw-m");
    group.sample_size(20);
    for m in [4usize, 8, 16] {
        let index = Hnsw::build(
            &data,
            HnswConfig {
                m,
                ef_construction: 64,
                seed: 3,
            },
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &index, |b, idx| {
            b.iter(|| std::hint::black_box(idx.search(&q, &SearchParams::ng(10, 64)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dstree_leaf_capacity,
    bench_isax_segments,
    bench_vafile_bits,
    bench_hnsw_connectivity
);
criterion_main!(benches);
