//! # hydra-eval
//!
//! Accuracy metrics, the workload execution protocol and reporting helpers
//! used to regenerate the tables and figures of the Lernaean Hydra paper.
//!
//! * [`metrics`] — Avg Recall, Mean Average Precision (MAP) and Mean
//!   Relative Error (MRE), defined exactly as in Section 4.1 of the paper.
//! * [`runner`] — runs a query workload against any [`hydra_core::AnnIndex`],
//!   measuring wall-clock time, implementation-independent cost counters and
//!   accuracy against brute-force ground truth; implements the paper's
//!   extrapolation protocol for large workloads (drop the 5 best and 5 worst
//!   queries, scale the mean of the rest). Two execution modes share one
//!   report type: [`runner::run_workload`] (sequential, paper-faithful) and
//!   [`runner::run_workload_parallel`] (sharded across scoped threads with
//!   batched `search_batch` calls, for serving-mode throughput).
//! * [`report`] — tiny CSV helpers and the Figure 9 decision-matrix
//!   recommendation logic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod report;
pub mod runner;

pub use metrics::{average_precision, mean_relative_error, recall, AccuracySummary};
pub use report::{recommend, CsvWriter, Recommendation, Scenario};
pub use runner::{
    percentile_seconds, run_workload, run_workload_parallel, LatencyPercentiles, WorkloadReport,
};
