//! Workload execution and measurement.
//!
//! # Measurement protocol
//!
//! The paper's experimental unit is *one workload, one method, one
//! parameter setting*. This module runs that unit two ways and produces the
//! same [`WorkloadReport`] for both:
//!
//! * [`run_workload`] — the paper-faithful protocol: queries are answered
//!   one at a time through [`AnnIndex::search`], each timed individually.
//!   All of the paper's figures are defined over this protocol.
//! * [`run_workload_parallel`] — the serving-mode protocol: the workload is
//!   sharded into contiguous batches, one per worker thread, and each shard
//!   is answered through [`AnnIndex::search_batch`] inside a
//!   [`std::thread::scope`]. Shards are merged back in workload order, so
//!   accuracy and cost counters are **deterministic and identical** to the
//!   sequential runner (the `search_batch` contract forbids batching from
//!   changing answers or per-query stats); only the wall-clock fields
//!   differ. One caveat: for disk-resident indexes, the I/O-*operation*
//!   counters (`random_ios`/`sequential_ios` — both their split *and*
//!   their sum, since a buffer-pool hit charges no operation at all) can
//!   drift with access interleaving, because the simulated pool is shared,
//!   order-sensitive state — exactly as on a real machine. `bytes_read`
//!   and every CPU-side counter stay exact.
//!
//! ## Snapshots and the indexing-cost split
//!
//! Both runners are oblivious to *how* the index came to exist: a freshly
//! built index and one restored via `hydra_persist::PersistentIndex::load`
//! are contractually indistinguishable (same answers, same CPU counters),
//! so the combined index+query figures can charge either a build or a
//! (much cheaper) snapshot load as the indexing-cost term. The figure
//! harness does exactly that for `--load-index` runs.
//!
//! ## Per-query timing under parallelism
//!
//! A batched call yields one wall-clock measurement per shard, not per
//! query, so the parallel runner attributes to every query of a shard the
//! shard's *amortized mean* (`shard_time / shard_len`). This keeps
//! `per_query_seconds` meaningful as input to the extrapolation below while
//! being honest about what was actually measured; per-query variance within
//! a shard is deliberately not invented.
//!
//! ## The 10 000-query extrapolation rule
//!
//! The paper reports large-workload costs by extrapolation rather than by
//! answering 10 000 queries against every method × dataset × setting cell:
//! sort the observed per-query times, drop the 5 best and the 5 worst, and
//! multiply the mean of the remainder by 10 000 ([`extrapolate_seconds`]).
//!
//! ## Why trimmed means
//!
//! The first queries of a run pay one-off costs (cold buffer pool, cold CPU
//! caches, page-in of the approximation file), and a stray slow query —
//! an OS scheduling hiccup, or a genuinely adversarial query — can be an
//! order of magnitude above the median. With only ~100 queries per
//! workload, a plain mean would let a single outlier move the extrapolated
//! figure by more than the differences between methods the figures are
//! meant to show; trimming both tails makes the estimate robust without
//! biasing it toward either the easy or the hard queries.
//!
//! ## Latency percentiles (p50 / p95 / p99)
//!
//! Serving a live workload cares about tails, which both the trimmed mean
//! and the extrapolation above deliberately ignore. Every report therefore
//! also carries the 50th, 95th and 99th percentile of `per_query_seconds`
//! ([`WorkloadReport::latency`]), computed with the **nearest-rank**
//! definition ([`percentile_seconds`]): the p-th percentile of `n` sorted
//! observations is the value at rank `ceil(p/100 · n)`. Nearest-rank always
//! returns an observed value (no interpolation can invent a latency nobody
//! measured) and is exact for the small workloads here. The same caveat as
//! above applies under the parallel runner: its per-query times are
//! per-shard amortized means, so its percentiles describe shard-level, not
//! query-level, tails — serving-side tails are measured where they are
//! real, at the client (`serve_client` reports these same three
//! percentiles over wire-level latencies).

use std::time::{Duration, Instant};

use hydra_core::{AnnIndex, QueryStats, SearchParams};
use hydra_data::{GroundTruth, QueryWorkload};
use hydra_obs::{QueryTrace, Stage, StageIo};

use crate::metrics::{average_precision, mean_relative_error, recall, AccuracySummary};

/// Everything measured while answering one workload with one method under
/// one parameter setting — the unit from which every figure of the paper is
/// assembled.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Method name.
    pub method: String,
    /// Search parameters used.
    pub params: SearchParams,
    /// Accuracy over the workload.
    pub accuracy: AccuracySummary,
    /// Total wall-clock time for the whole workload, in seconds.
    pub total_seconds: f64,
    /// Throughput in queries per minute.
    pub queries_per_minute: f64,
    /// Estimated total seconds for a 10 000-query workload, using the
    /// paper's extrapolation protocol (drop the 5 best and 5 worst queries,
    /// multiply the mean of the rest by 10 000).
    pub extrapolated_10k_seconds: f64,
    /// Cost counters summed over the workload.
    pub stats: QueryStats,
    /// Per-query wall-clock times in seconds. Under the parallel runner
    /// these are per-shard amortized means (see the module docs).
    pub per_query_seconds: Vec<f64>,
    /// p50/p95/p99 of [`Self::per_query_seconds`] (nearest-rank; see the
    /// module docs for the definition and its serving-mode caveat).
    pub latency: LatencyPercentiles,
    /// Number of queries answered.
    pub num_queries: usize,
    /// Number of worker threads actually spawned (1 for the sequential
    /// runner; can be below the requested count when ceiling-division
    /// sharding merges the tail, e.g. 9 queries at 8 requested threads run
    /// as 5 shards of 2).
    pub threads: usize,
    /// Stage-span breakdown of the whole workload: the sequential runner
    /// attributes each query's time (and the workload's summed I/O) to
    /// the search stage; the parallel runner additionally records the
    /// fan-out stage (wall-clock of the threaded section, waiting on the
    /// slowest shard). Fig binaries render this as the `--trace-out`
    /// stage-breakdown CSV.
    pub trace: QueryTrace,
}

impl WorkloadReport {
    /// Fraction of the raw dataset accessed (bytes read / total payload).
    pub fn fraction_data_accessed(&self, total_bytes: u64) -> f64 {
        self.stats.fraction_data_accessed(total_bytes) / self.num_queries.max(1) as f64
    }

    /// Average random I/Os per query.
    pub fn random_ios_per_query(&self) -> f64 {
        self.stats.random_ios as f64 / self.num_queries.max(1) as f64
    }
}

/// The latency tail of one workload run: 50th, 95th and 99th percentile of
/// the per-query times, nearest-rank definition (module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyPercentiles {
    /// Median per-query seconds.
    pub p50_seconds: f64,
    /// 95th-percentile per-query seconds.
    pub p95_seconds: f64,
    /// 99th-percentile per-query seconds.
    pub p99_seconds: f64,
}

impl LatencyPercentiles {
    /// Computes the three percentiles of `per_query_seconds` (0.0 across
    /// the board for an empty slice), sorting the observations once.
    pub fn from_times(per_query_seconds: &[f64]) -> Self {
        if per_query_seconds.is_empty() {
            return Self::default();
        }
        let mut sorted = per_query_seconds.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self {
            p50_seconds: sorted[nearest_rank(sorted.len(), 50.0) - 1],
            p95_seconds: sorted[nearest_rank(sorted.len(), 95.0) - 1],
            p99_seconds: sorted[nearest_rank(sorted.len(), 99.0) - 1],
        }
    }
}

/// The 1-based nearest rank of the p-th percentile among `n` observations:
/// `ceil(p/100 · n)`, clamped into `1..=n`.
fn nearest_rank(n: usize, p: f64) -> usize {
    ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n)
}

/// Nearest-rank percentile: the value at rank `ceil(p/100 · n)` of the
/// sorted observations (`0 < p ≤ 100`), i.e. the smallest observation that
/// at least `p` percent of the sample does not exceed. Returns 0.0 for an
/// empty slice.
///
/// # Panics
/// Panics if `p` is not in `(0, 100]` — asking for the 0th or the 150th
/// percentile is a caller bug, not a data property.
pub fn percentile_seconds(per_query_seconds: &[f64], p: f64) -> f64 {
    assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100], got {p}");
    if per_query_seconds.is_empty() {
        return 0.0;
    }
    let mut sorted = per_query_seconds.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[nearest_rank(sorted.len(), p) - 1]
}

/// Extrapolates a large-workload runtime from per-query times, following the
/// paper: discard the 5 best and 5 worst queries (when there are enough) and
/// multiply the average of the remainder by `target` queries.
pub fn extrapolate_seconds(per_query_seconds: &[f64], target: usize) -> f64 {
    if per_query_seconds.is_empty() {
        return 0.0;
    }
    let mut sorted = per_query_seconds.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let trimmed: &[f64] = if sorted.len() > 10 {
        &sorted[5..sorted.len() - 5]
    } else {
        &sorted
    };
    let mean = trimmed.iter().sum::<f64>() / trimmed.len() as f64;
    mean * target as f64
}

/// Runs `workload` against `index` with the given parameters and measures
/// accuracy against `ground_truth`.
///
/// Queries the index one at a time (the paper runs queries asynchronously,
/// not in batch mode) and accumulates wall-clock time and cost counters.
pub fn run_workload(
    index: &dyn AnnIndex,
    workload: &QueryWorkload,
    ground_truth: &GroundTruth,
    params: &SearchParams,
) -> WorkloadReport {
    let mut per_query = Vec::with_capacity(workload.len());
    let mut per_query_seconds = Vec::with_capacity(workload.len());
    let mut stats = QueryStats::new();
    let started = Instant::now();
    let mut trace = QueryTrace::new();
    for (q, query) in workload.iter().enumerate() {
        let t0 = Instant::now();
        let result = index
            .search(query, params)
            .unwrap_or_default_result();
        let elapsed = t0.elapsed();
        trace.record(Stage::ShardSearch, elapsed);
        per_query_seconds.push(elapsed.as_secs_f64());
        stats.merge(&result.stats);
        let truth = &ground_truth.answers[q];
        per_query.push((
            recall(&result.neighbors, truth),
            average_precision(&result.neighbors, truth),
            mean_relative_error(&result.neighbors, truth),
        ));
    }
    let total_seconds = started.elapsed().as_secs_f64();
    trace.record_io(Stage::ShardSearch, stage_io(&stats));
    let queries_per_minute = if total_seconds > 0.0 {
        workload.len() as f64 / total_seconds * 60.0
    } else {
        f64::INFINITY
    };
    WorkloadReport {
        method: index.name().to_string(),
        params: *params,
        accuracy: AccuracySummary::from_queries(&per_query),
        total_seconds,
        queries_per_minute,
        extrapolated_10k_seconds: extrapolate_seconds(&per_query_seconds, 10_000),
        stats,
        latency: LatencyPercentiles::from_times(&per_query_seconds),
        per_query_seconds,
        num_queries: workload.len(),
        threads: 1,
        trace,
    }
}

/// The I/O slice of a summed [`QueryStats`], in the shape stage traces
/// attribute per stage.
fn stage_io(stats: &QueryStats) -> StageIo {
    StageIo {
        bytes_read: stats.bytes_read,
        random_ios: stats.random_ios,
        sequential_ios: stats.sequential_ios,
    }
}

/// Runs `workload` against `index` with `num_threads` worker threads,
/// measuring accuracy against `ground_truth`.
///
/// The workload is split into `num_threads` contiguous shards; each worker
/// answers its shard with one [`AnnIndex::search_batch`] call (letting the
/// index amortize per-query setup across the shard) and the per-shard
/// results are merged back in workload order. Accuracy and summed
/// [`QueryStats`] are identical to [`run_workload`] for any thread count —
/// see the module docs for the exact determinism contract and the timing
/// semantics of `per_query_seconds`.
pub fn run_workload_parallel(
    index: &dyn AnnIndex,
    workload: &QueryWorkload,
    ground_truth: &GroundTruth,
    params: &SearchParams,
    num_threads: usize,
) -> WorkloadReport {
    let queries: Vec<&[f32]> = workload.iter().collect();
    let n = queries.len();
    let num_threads = num_threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(num_threads).max(1);
    // Ceiling division can merge the tail: 9 queries at 8 requested threads
    // yield ceil(9/2) = 5 shards. Report what actually ran.
    let spawned = if n == 0 { 1 } else { n.div_ceil(chunk) };

    let mut per_query = vec![(0.0f64, 0.0f64, 0.0f64); n];
    let mut per_query_seconds = vec![0.0f64; n];
    let mut per_query_stats = vec![QueryStats::new(); n];
    let started = Instant::now();
    if n > 0 {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, shard) in queries.chunks(chunk).enumerate() {
                let shard_range = (t * chunk, t * chunk + shard.len());
                let handle = scope.spawn(move || {
                    let t0 = Instant::now();
                    let results = index.search_batch(shard, params);
                    let amortized = t0.elapsed().as_secs_f64() / shard.len() as f64;
                    let offset = t * chunk;
                    let mut rows = Vec::with_capacity(shard.len());
                    for (i, res) in results.into_iter().enumerate() {
                        let result = res.unwrap_or_default();
                        let truth = &ground_truth.answers[offset + i];
                        rows.push((
                            recall(&result.neighbors, truth),
                            average_precision(&result.neighbors, truth),
                            mean_relative_error(&result.neighbors, truth),
                            result.stats,
                        ));
                    }
                    (t, amortized, rows)
                });
                handles.push((shard_range, handle));
            }
            for ((start, end), handle) in handles {
                // A panicking worker must name its shard: a poisoned run
                // over thousands of queries is undiagnosable from a bare
                // "workload worker panicked".
                let (t, amortized, rows) = handle.join().unwrap_or_else(|payload| {
                    panic!(
                        "workload shard {} (queries {start}..{end}) panicked: {}",
                        start / chunk,
                        panic_message(&payload)
                    )
                });
                for (i, (r, ap, mre, qstats)) in rows.into_iter().enumerate() {
                    let g = t * chunk + i;
                    per_query[g] = (r, ap, mre);
                    per_query_seconds[g] = amortized;
                    per_query_stats[g] = qstats;
                }
            }
        });
    }
    let fan_out_wall = started.elapsed();
    let total_seconds = fan_out_wall.as_secs_f64();
    let mut stats = QueryStats::new();
    for s in &per_query_stats {
        stats.merge(s);
    }
    // Per-query search time is the shard-amortized mean (module docs);
    // the fan-out span is the wall-clock of the whole threaded section,
    // i.e. the wait on the slowest shard.
    let mut trace = QueryTrace::new();
    for &s in &per_query_seconds {
        trace.record(Stage::ShardSearch, Duration::from_secs_f64(s));
    }
    trace.record_io(Stage::ShardSearch, stage_io(&stats));
    if n > 0 {
        trace.record(Stage::FanOut, fan_out_wall);
    }
    let queries_per_minute = if total_seconds > 0.0 {
        n as f64 / total_seconds * 60.0
    } else {
        f64::INFINITY
    };
    WorkloadReport {
        method: index.name().to_string(),
        params: *params,
        accuracy: AccuracySummary::from_queries(&per_query),
        total_seconds,
        queries_per_minute,
        extrapolated_10k_seconds: extrapolate_seconds(&per_query_seconds, 10_000),
        stats,
        latency: LatencyPercentiles::from_times(&per_query_seconds),
        per_query_seconds,
        num_queries: n,
        threads: spawned,
        trace,
    }
}

/// Renders a worker's panic payload: `panic!` with a message produces a
/// `String` or `&str` payload; anything else (a custom `panic_any`) is
/// reported by its opaqueness rather than dropped.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "(non-string panic payload)"
    }
}

/// Small extension so a failed query (unsupported mode mid-sweep) counts as
/// an empty answer instead of aborting a whole experiment.
trait UnwrapResult {
    fn unwrap_or_default_result(self) -> hydra_core::SearchResult;
}

impl UnwrapResult for hydra_core::Result<hydra_core::SearchResult> {
    fn unwrap_or_default_result(self) -> hydra_core::SearchResult {
        self.unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::{Capabilities, Dataset, Representation, Result, SearchResult};
    use hydra_data::{ground_truth, noisy_queries, random_walk};

    /// A trivially exact "index": brute force scan. Lets the runner be
    /// tested independently of any real index crate.
    struct BruteForce {
        data: Dataset,
    }

    impl AnnIndex for BruteForce {
        fn name(&self) -> &'static str {
            "brute-force"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                exact: true,
                ng_approximate: false,
                epsilon_approximate: false,
                delta_epsilon_approximate: false,
                disk_resident: false,
                streaming_insert: false,
                representation: Representation::Raw,
            }
        }
        fn num_series(&self) -> usize {
            self.data.len()
        }
        fn series_len(&self) -> usize {
            self.data.series_len()
        }
        fn memory_footprint(&self) -> usize {
            self.data.payload_bytes()
        }
        fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
            let neighbors = hydra_data::exact_knn(&self.data, query, params.k);
            let mut stats = QueryStats::new();
            stats.distance_computations = self.data.len() as u64;
            Ok(SearchResult::new(neighbors, stats))
        }
        /// Shares the scoped-thread brute-force scan with the ground-truth
        /// path; stats are attributed per query exactly as in `search`.
        fn search_batch(
            &self,
            queries: &[&[f32]],
            params: &SearchParams,
        ) -> Vec<Result<SearchResult>> {
            hydra_data::exact_knn_batch(&self.data, queries, params.k)
                .into_iter()
                .map(|neighbors| {
                    let mut stats = QueryStats::new();
                    stats.distance_computations = self.data.len() as u64;
                    Ok(SearchResult::new(neighbors, stats))
                })
                .collect()
        }
    }

    #[test]
    fn exact_method_scores_perfect_accuracy() {
        let data = random_walk(200, 32, 1);
        let workload = noisy_queries(&data, 12, &[0.1], 2);
        let gt = ground_truth(&data, &workload, 5);
        let index = BruteForce { data };
        let report = run_workload(&index, &workload, &gt, &SearchParams::exact(5));
        assert_eq!(report.num_queries, 12);
        assert!((report.accuracy.avg_recall - 1.0).abs() < 1e-12);
        assert!((report.accuracy.map - 1.0).abs() < 1e-12);
        assert!(report.accuracy.mre.abs() < 1e-12);
        assert!(report.total_seconds > 0.0);
        assert!(report.queries_per_minute > 0.0);
        assert!(report.extrapolated_10k_seconds > 0.0);
        assert_eq!(report.per_query_seconds.len(), 12);
        assert_eq!(report.stats.distance_computations, 12 * 200);
        assert_eq!(report.method, "brute-force");
        assert!(report.random_ios_per_query() >= 0.0);
        assert!(report.fraction_data_accessed(1) >= 0.0);
    }

    #[test]
    fn parallel_runner_is_deterministic_across_thread_counts() {
        let data = random_walk(300, 32, 7);
        let workload = noisy_queries(&data, 13, &[0.0, 0.2], 8);
        let gt = ground_truth(&data, &workload, 5);
        let index = BruteForce { data };
        let params = SearchParams::exact(5);
        let sequential = run_workload(&index, &workload, &gt, &params);
        for threads in [1usize, 2, 4] {
            let parallel = run_workload_parallel(&index, &workload, &gt, &params, threads);
            assert_eq!(parallel.num_queries, sequential.num_queries);
            assert_eq!(parallel.threads, threads.min(13));
            assert_eq!(
                parallel.accuracy, sequential.accuracy,
                "{threads}-thread accuracy must match the sequential runner"
            );
            assert_eq!(
                parallel.stats, sequential.stats,
                "{threads}-thread summed stats must match the sequential runner"
            );
            assert_eq!(parallel.per_query_seconds.len(), 13);
            assert!(parallel.total_seconds > 0.0);
            assert!(parallel.extrapolated_10k_seconds > 0.0);
            assert_eq!(parallel.method, "brute-force");
        }
    }

    #[test]
    fn parallel_runner_handles_degenerate_workloads() {
        let data = random_walk(50, 16, 9);
        let workload = noisy_queries(&data, 2, &[0.1], 10);
        let gt = ground_truth(&data, &workload, 3);
        let index = BruteForce { data };
        // More threads than queries: clamped, still correct.
        let report = run_workload_parallel(&index, &workload, &gt, &SearchParams::exact(3), 16);
        assert_eq!(report.threads, 2);
        assert_eq!(report.num_queries, 2);
        assert!((report.accuracy.avg_recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reported_threads_is_the_spawned_shard_count() {
        // 9 queries at 8 requested threads: chunk = ceil(9/8) = 2, so only
        // ceil(9/2) = 5 shards actually run — the report must say 5.
        let data = random_walk(60, 16, 11);
        let workload = noisy_queries(&data, 9, &[0.1], 12);
        let gt = ground_truth(&data, &workload, 3);
        let index = BruteForce { data };
        let report = run_workload_parallel(&index, &workload, &gt, &SearchParams::exact(3), 8);
        assert_eq!(report.threads, 5);
        assert_eq!(report.num_queries, 9);
    }

    /// An index whose batch entry point panics when a shard contains the
    /// poison query (first value negative) — for testing worker-panic
    /// propagation.
    struct Poisoned;

    impl AnnIndex for Poisoned {
        fn name(&self) -> &'static str {
            "poisoned"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                exact: true,
                ng_approximate: false,
                epsilon_approximate: false,
                delta_epsilon_approximate: false,
                disk_resident: false,
                streaming_insert: false,
                representation: Representation::Raw,
            }
        }
        fn num_series(&self) -> usize {
            1
        }
        fn series_len(&self) -> usize {
            2
        }
        fn memory_footprint(&self) -> usize {
            0
        }
        fn search(&self, query: &[f32], _params: &SearchParams) -> Result<SearchResult> {
            assert!(query[0] >= 0.0, "poison query reached the worker");
            Ok(SearchResult::default())
        }
    }

    #[test]
    #[should_panic(expected = "workload shard 1 (queries 2..4) panicked")]
    fn panicking_worker_names_its_shard() {
        // 4 queries on 2 threads: shard 0 answers queries 0..2, shard 1
        // queries 2..4. The poison query sits at index 3, so the panic
        // message must name shard 1 and its query range.
        let queries = Dataset::from_series(
            2,
            &[[0.0f32, 0.0], [1.0, 0.0], [2.0, 0.0], [-1.0, 0.0]],
        )
        .unwrap();
        let workload = hydra_data::QueryWorkload {
            noise_levels: vec![0.0; queries.len()],
            queries,
        };
        let gt = GroundTruth {
            k: 1,
            answers: vec![Vec::new(); 4],
        };
        run_workload_parallel(&Poisoned, &workload, &gt, &SearchParams::exact(1), 2);
    }

    #[test]
    fn percentiles_pin_the_nearest_rank_definition() {
        // 10 observations 1..=10: p50 = ceil(5) -> 5th smallest = 5,
        // p95 = ceil(9.5) -> 10th = 10, p99 -> 10, p100 -> 10, p10 -> 1.
        let t: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        assert_eq!(percentile_seconds(&t, 50.0), 5.0);
        assert_eq!(percentile_seconds(&t, 95.0), 10.0);
        assert_eq!(percentile_seconds(&t, 99.0), 10.0);
        assert_eq!(percentile_seconds(&t, 100.0), 10.0);
        assert_eq!(percentile_seconds(&t, 10.0), 1.0);
        // Order of the input must not matter.
        let shuffled = [7.0, 1.0, 10.0, 4.0, 2.0, 9.0, 5.0, 3.0, 8.0, 6.0];
        assert_eq!(percentile_seconds(&shuffled, 50.0), 5.0);
        // A single observation is every percentile.
        assert_eq!(percentile_seconds(&[0.25], 50.0), 0.25);
        assert_eq!(percentile_seconds(&[0.25], 99.0), 0.25);
        // 100 observations 1..=100: p99 = 99th smallest.
        let t: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile_seconds(&t, 99.0), 99.0);
        assert_eq!(percentile_seconds(&t, 95.0), 95.0);
        // Empty input degrades to zero rather than panicking.
        assert_eq!(percentile_seconds(&[], 50.0), 0.0);
        let l = LatencyPercentiles::from_times(&[3.0, 1.0, 2.0]);
        assert_eq!(l.p50_seconds, 2.0);
        assert_eq!(l.p95_seconds, 3.0);
        assert_eq!(l.p99_seconds, 3.0);
        assert_eq!(LatencyPercentiles::from_times(&[]), LatencyPercentiles::default());
    }

    #[test]
    #[should_panic(expected = "percentile must be in (0, 100]")]
    fn zeroth_percentile_is_a_caller_bug() {
        percentile_seconds(&[1.0], 0.0);
    }

    #[test]
    fn reports_carry_consistent_latency_percentiles() {
        let data = random_walk(120, 16, 3);
        let workload = noisy_queries(&data, 11, &[0.1], 4);
        let gt = ground_truth(&data, &workload, 3);
        let index = BruteForce { data };
        for report in [
            run_workload(&index, &workload, &gt, &SearchParams::exact(3)),
            run_workload_parallel(&index, &workload, &gt, &SearchParams::exact(3), 3),
        ] {
            assert_eq!(
                report.latency,
                LatencyPercentiles::from_times(&report.per_query_seconds)
            );
            assert!(report.latency.p50_seconds > 0.0);
            assert!(report.latency.p50_seconds <= report.latency.p95_seconds);
            assert!(report.latency.p95_seconds <= report.latency.p99_seconds);
        }
    }

    #[test]
    fn reports_carry_stage_traces() {
        let data = random_walk(150, 16, 21);
        let workload = noisy_queries(&data, 8, &[0.1], 22);
        let gt = ground_truth(&data, &workload, 3);
        let index = BruteForce { data };
        let params = SearchParams::exact(3);

        let seq = run_workload(&index, &workload, &gt, &params);
        let search = seq.trace.span(Stage::ShardSearch);
        assert_eq!(search.calls, 8, "one search span per query");
        assert!(search.nanos > 0);
        assert_eq!(seq.trace.span(Stage::FanOut).calls, 0, "sequential runner never fans out");
        assert_eq!(search.io.bytes_read, seq.stats.bytes_read);

        let par = run_workload_parallel(&index, &workload, &gt, &params, 4);
        assert_eq!(par.trace.span(Stage::ShardSearch).calls, 8);
        assert_eq!(par.trace.span(Stage::FanOut).calls, 1, "one fan-out per threaded section");
        assert!(par.trace.span(Stage::FanOut).nanos > 0);
    }

    #[test]
    fn extrapolation_trims_outliers() {
        // 20 queries at 1ms with two outliers; trimmed mean ignores them.
        let mut times = vec![0.001f64; 18];
        times.push(10.0);
        times.push(0.000001);
        let est = extrapolate_seconds(&times, 10_000);
        assert!((est - 10.0).abs() < 1.0, "outliers must be trimmed: {est}");
        // Short workloads are used as-is.
        let est_small = extrapolate_seconds(&[0.002, 0.004], 100);
        assert!((est_small - 0.3).abs() < 1e-9);
        assert_eq!(extrapolate_seconds(&[], 100), 0.0);
    }
}
