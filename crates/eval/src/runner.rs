//! Workload execution and measurement.

use std::time::Instant;

use hydra_core::{AnnIndex, QueryStats, SearchParams};
use hydra_data::{GroundTruth, QueryWorkload};

use crate::metrics::{average_precision, mean_relative_error, recall, AccuracySummary};

/// Everything measured while answering one workload with one method under
/// one parameter setting — the unit from which every figure of the paper is
/// assembled.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Method name.
    pub method: String,
    /// Search parameters used.
    pub params: SearchParams,
    /// Accuracy over the workload.
    pub accuracy: AccuracySummary,
    /// Total wall-clock time for the whole workload, in seconds.
    pub total_seconds: f64,
    /// Throughput in queries per minute.
    pub queries_per_minute: f64,
    /// Estimated total seconds for a 10 000-query workload, using the
    /// paper's extrapolation protocol (drop the 5 best and 5 worst queries,
    /// multiply the mean of the rest by 10 000).
    pub extrapolated_10k_seconds: f64,
    /// Cost counters summed over the workload.
    pub stats: QueryStats,
    /// Per-query wall-clock times in seconds.
    pub per_query_seconds: Vec<f64>,
    /// Number of queries answered.
    pub num_queries: usize,
}

impl WorkloadReport {
    /// Fraction of the raw dataset accessed (bytes read / total payload).
    pub fn fraction_data_accessed(&self, total_bytes: u64) -> f64 {
        self.stats.fraction_data_accessed(total_bytes) / self.num_queries.max(1) as f64
    }

    /// Average random I/Os per query.
    pub fn random_ios_per_query(&self) -> f64 {
        self.stats.random_ios as f64 / self.num_queries.max(1) as f64
    }
}

/// Extrapolates a large-workload runtime from per-query times, following the
/// paper: discard the 5 best and 5 worst queries (when there are enough) and
/// multiply the average of the remainder by `target` queries.
pub fn extrapolate_seconds(per_query_seconds: &[f64], target: usize) -> f64 {
    if per_query_seconds.is_empty() {
        return 0.0;
    }
    let mut sorted = per_query_seconds.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let trimmed: &[f64] = if sorted.len() > 10 {
        &sorted[5..sorted.len() - 5]
    } else {
        &sorted
    };
    let mean = trimmed.iter().sum::<f64>() / trimmed.len() as f64;
    mean * target as f64
}

/// Runs `workload` against `index` with the given parameters and measures
/// accuracy against `ground_truth`.
///
/// Queries the index one at a time (the paper runs queries asynchronously,
/// not in batch mode) and accumulates wall-clock time and cost counters.
pub fn run_workload(
    index: &dyn AnnIndex,
    workload: &QueryWorkload,
    ground_truth: &GroundTruth,
    params: &SearchParams,
) -> WorkloadReport {
    let mut per_query = Vec::with_capacity(workload.len());
    let mut per_query_seconds = Vec::with_capacity(workload.len());
    let mut stats = QueryStats::new();
    let started = Instant::now();
    for (q, query) in workload.iter().enumerate() {
        let t0 = Instant::now();
        let result = index
            .search(query, params)
            .unwrap_or_default_result();
        per_query_seconds.push(t0.elapsed().as_secs_f64());
        stats.merge(&result.stats);
        let truth = &ground_truth.answers[q];
        per_query.push((
            recall(&result.neighbors, truth),
            average_precision(&result.neighbors, truth),
            mean_relative_error(&result.neighbors, truth),
        ));
    }
    let total_seconds = started.elapsed().as_secs_f64();
    let queries_per_minute = if total_seconds > 0.0 {
        workload.len() as f64 / total_seconds * 60.0
    } else {
        f64::INFINITY
    };
    WorkloadReport {
        method: index.name().to_string(),
        params: *params,
        accuracy: AccuracySummary::from_queries(&per_query),
        total_seconds,
        queries_per_minute,
        extrapolated_10k_seconds: extrapolate_seconds(&per_query_seconds, 10_000),
        stats,
        per_query_seconds,
        num_queries: workload.len(),
    }
}

/// Small extension so a failed query (unsupported mode mid-sweep) counts as
/// an empty answer instead of aborting a whole experiment.
trait UnwrapResult {
    fn unwrap_or_default_result(self) -> hydra_core::SearchResult;
}

impl UnwrapResult for hydra_core::Result<hydra_core::SearchResult> {
    fn unwrap_or_default_result(self) -> hydra_core::SearchResult {
        self.unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::{Capabilities, Dataset, Representation, Result, SearchResult};
    use hydra_data::{ground_truth, noisy_queries, random_walk};

    /// A trivially exact "index": brute force scan. Lets the runner be
    /// tested independently of any real index crate.
    struct BruteForce {
        data: Dataset,
    }

    impl AnnIndex for BruteForce {
        fn name(&self) -> &'static str {
            "brute-force"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                exact: true,
                ng_approximate: false,
                epsilon_approximate: false,
                delta_epsilon_approximate: false,
                disk_resident: false,
                representation: Representation::Raw,
            }
        }
        fn num_series(&self) -> usize {
            self.data.len()
        }
        fn series_len(&self) -> usize {
            self.data.series_len()
        }
        fn memory_footprint(&self) -> usize {
            self.data.payload_bytes()
        }
        fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
            let neighbors = hydra_data::exact_knn(&self.data, query, params.k);
            let mut stats = QueryStats::new();
            stats.distance_computations = self.data.len() as u64;
            Ok(SearchResult::new(neighbors, stats))
        }
    }

    #[test]
    fn exact_method_scores_perfect_accuracy() {
        let data = random_walk(200, 32, 1);
        let workload = noisy_queries(&data, 12, &[0.1], 2);
        let gt = ground_truth(&data, &workload, 5);
        let index = BruteForce { data };
        let report = run_workload(&index, &workload, &gt, &SearchParams::exact(5));
        assert_eq!(report.num_queries, 12);
        assert!((report.accuracy.avg_recall - 1.0).abs() < 1e-12);
        assert!((report.accuracy.map - 1.0).abs() < 1e-12);
        assert!(report.accuracy.mre.abs() < 1e-12);
        assert!(report.total_seconds > 0.0);
        assert!(report.queries_per_minute > 0.0);
        assert!(report.extrapolated_10k_seconds > 0.0);
        assert_eq!(report.per_query_seconds.len(), 12);
        assert_eq!(report.stats.distance_computations, 12 * 200);
        assert_eq!(report.method, "brute-force");
        assert!(report.random_ios_per_query() >= 0.0);
        assert!(report.fraction_data_accessed(1) >= 0.0);
    }

    #[test]
    fn extrapolation_trims_outliers() {
        // 20 queries at 1ms with two outliers; trimmed mean ignores them.
        let mut times = vec![0.001f64; 18];
        times.push(10.0);
        times.push(0.000001);
        let est = extrapolate_seconds(&times, 10_000);
        assert!((est - 10.0).abs() < 1.0, "outliers must be trimmed: {est}");
        // Short workloads are used as-is.
        let est_small = extrapolate_seconds(&[0.002, 0.004], 100);
        assert!((est_small - 0.3).abs() < 1e-9);
        assert_eq!(extrapolate_seconds(&[], 100), 0.0);
    }
}
