//! Accuracy metrics (Section 4.1 of the paper).

use hydra_core::Neighbor;

/// Recall of one query: the fraction of true neighbors returned.
///
/// `Recall(S_Q) = (# true neighbors returned) / k`.
pub fn recall(found: &[Neighbor], truth: &[Neighbor]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let truth_ids: std::collections::HashSet<usize> = truth.iter().map(|n| n.index).collect();
    let hits = found.iter().filter(|n| truth_ids.contains(&n.index)).count();
    hits as f64 / truth.len() as f64
}

/// Average precision of one query (the rank-sensitive measure the paper
/// prefers over recall):
///
/// `AP(S_Q) = (1/k) Σ_r P(S_Q, r) · rel(r)` where `P(S_Q, r)` is the
/// precision among the first `r` returned elements and `rel(r)` indicates
/// whether the element at rank `r` is a true neighbor.
pub fn average_precision(found: &[Neighbor], truth: &[Neighbor]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let truth_ids: std::collections::HashSet<usize> = truth.iter().map(|n| n.index).collect();
    let k = truth.len();
    let mut hits = 0usize;
    let mut ap = 0.0f64;
    for (r, n) in found.iter().enumerate().take(k) {
        if truth_ids.contains(&n.index) {
            hits += 1;
            ap += hits as f64 / (r + 1) as f64;
        }
    }
    ap / k as f64
}

/// Relative error of one query:
///
/// `RE(S_Q) = (1/k) Σ_r (d(S_Q, S_Cr) − d(S_Q, S_Ci)) / d(S_Q, S_Ci)` where
/// `S_Cr` is the r-th returned neighbor and `S_Ci` the true r-th nearest
/// neighbor. Pairs whose exact distance is zero are skipped, as in the paper
/// (which excludes self-matches from the definition).
pub fn mean_relative_error(found: &[Neighbor], truth: &[Neighbor]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for (r, exact) in truth.iter().enumerate() {
        if exact.distance <= f32::EPSILON {
            continue;
        }
        let approx = found
            .get(r)
            .map(|n| n.distance)
            .unwrap_or(f32::INFINITY)
            .max(exact.distance);
        total += ((approx - exact.distance) / exact.distance) as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Workload-level accuracy summary: the three measures averaged over all
/// queries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccuracySummary {
    /// Average recall over the workload.
    pub avg_recall: f64,
    /// Mean average precision over the workload.
    pub map: f64,
    /// Mean relative (distance) error over the workload.
    pub mre: f64,
}

impl AccuracySummary {
    /// Averages per-query measurements.
    pub fn from_queries(per_query: &[(f64, f64, f64)]) -> Self {
        if per_query.is_empty() {
            return Self::default();
        }
        let n = per_query.len() as f64;
        Self {
            avg_recall: per_query.iter().map(|q| q.0).sum::<f64>() / n,
            map: per_query.iter().map(|q| q.1).sum::<f64>() / n,
            mre: per_query.iter().map(|q| q.2).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(index: usize, distance: f32) -> Neighbor {
        Neighbor::new(index, distance)
    }

    #[test]
    fn perfect_answer_scores_one() {
        let truth = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0)];
        assert_eq!(recall(&truth, &truth), 1.0);
        assert_eq!(average_precision(&truth, &truth), 1.0);
        assert_eq!(mean_relative_error(&truth, &truth), 0.0);
    }

    #[test]
    fn empty_answer_scores_zero() {
        let truth = vec![n(1, 1.0), n(2, 2.0)];
        assert_eq!(recall(&[], &truth), 0.0);
        assert_eq!(average_precision(&[], &truth), 0.0);
        assert!(mean_relative_error(&[], &truth) > 1e6);
    }

    #[test]
    fn recall_counts_set_overlap_only() {
        let truth = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0), n(4, 4.0)];
        let found = vec![n(3, 3.0), n(9, 9.0), n(1, 1.0), n(8, 8.0)];
        assert_eq!(recall(&found, &truth), 0.5);
    }

    #[test]
    fn map_is_rank_sensitive_where_recall_is_not() {
        let truth = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0), n(4, 4.0)];
        // Same set of hits, different order: recall identical, AP differs.
        let good_order = vec![n(1, 1.0), n(2, 2.0), n(8, 9.0), n(9, 9.0)];
        let bad_order = vec![n(8, 9.0), n(9, 9.0), n(1, 1.0), n(2, 2.0)];
        assert_eq!(recall(&good_order, &truth), recall(&bad_order, &truth));
        assert!(average_precision(&good_order, &truth) > average_precision(&bad_order, &truth));
    }

    #[test]
    fn mre_measures_distance_degradation() {
        let truth = vec![n(1, 1.0), n(2, 2.0)];
        let found = vec![n(7, 1.5), n(8, 3.0)];
        // ((1.5-1)/1 + (3-2)/2) / 2 = (0.5 + 0.5)/2 = 0.5
        assert!((mean_relative_error(&found, &truth) - 0.5).abs() < 1e-9);
        // Zero-distance exact neighbors are skipped.
        let truth_zero = vec![n(1, 0.0), n(2, 2.0)];
        let found2 = vec![n(1, 0.0), n(2, 2.0)];
        assert_eq!(mean_relative_error(&found2, &truth_zero), 0.0);
    }

    #[test]
    fn summary_averages_queries() {
        let s = AccuracySummary::from_queries(&[(1.0, 1.0, 0.0), (0.5, 0.25, 0.2)]);
        assert!((s.avg_recall - 0.75).abs() < 1e-12);
        assert!((s.map - 0.625).abs() < 1e-12);
        assert!((s.mre - 0.1).abs() < 1e-12);
        assert_eq!(AccuracySummary::from_queries(&[]), AccuracySummary::default());
    }

    #[test]
    fn empty_truth_is_trivially_satisfied() {
        assert_eq!(recall(&[n(0, 1.0)], &[]), 1.0);
        assert_eq!(average_precision(&[n(0, 1.0)], &[]), 1.0);
        assert_eq!(mean_relative_error(&[n(0, 1.0)], &[]), 0.0);
    }
}
