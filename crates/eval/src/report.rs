//! CSV reporting and the Figure 9 decision matrix.

use std::fmt::Write as _;

/// A minimal CSV writer used by the figure harnesses (keeps the workspace
/// free of serialization dependencies).
#[derive(Debug, Default)]
pub struct CsvWriter {
    buffer: String,
    columns: usize,
}

impl CsvWriter {
    /// Creates a writer with the given header row.
    pub fn new(header: &[&str]) -> Self {
        let mut w = Self {
            buffer: String::new(),
            columns: header.len(),
        };
        w.write_row_internal(header.iter().map(|s| s.to_string()));
        w
    }

    /// Appends one row. Values are formatted with `Display`.
    ///
    /// # Panics
    /// Panics if the number of values differs from the header width.
    pub fn row<I, T>(&mut self, values: I)
    where
        I: IntoIterator<Item = T>,
        T: std::fmt::Display,
    {
        let rendered: Vec<String> = values.into_iter().map(|v| v.to_string()).collect();
        assert_eq!(
            rendered.len(),
            self.columns,
            "row width must match the header"
        );
        self.write_row_internal(rendered.into_iter());
    }

    fn write_row_internal<I: Iterator<Item = String>>(&mut self, values: I) {
        let mut first = true;
        for v in values {
            if !first {
                self.buffer.push(',');
            }
            let needs_quotes = v.contains(',') || v.contains('"');
            if needs_quotes {
                let escaped = v.replace('"', "\"\"");
                let _ = write!(self.buffer, "\"{escaped}\"");
            } else {
                self.buffer.push_str(&v);
            }
            first = false;
        }
        self.buffer.push('\n');
    }

    /// The accumulated CSV text.
    pub fn as_str(&self) -> &str {
        &self.buffer
    }

    /// Number of data rows written (excluding the header).
    pub fn num_rows(&self) -> usize {
        self.buffer.lines().count().saturating_sub(1)
    }
}

/// The scenario axes of the paper's recommendation matrix (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Whether the dataset fits in memory.
    pub in_memory: bool,
    /// Whether the user needs guarantees (ε / δ-ε) on the answers.
    pub needs_guarantees: bool,
    /// Whether index-construction time must be amortized over a small query
    /// workload (≈100 queries) rather than a large one (≈10K queries).
    pub small_workload: bool,
}

/// A recommendation produced by [`recommend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recommendation {
    /// Primary method to use.
    pub method: &'static str,
    /// Justification, phrased like the paper's discussion.
    pub rationale: &'static str,
}

/// The paper's Figure 9 decision matrix (query answering with an existing
/// index, refined by the amortization discussion of Section 4.2.3):
///
/// * in-memory, no guarantees → HNSW (best ng throughput/accuracy), unless
///   the index must be amortized over few queries, in which case iSAX2+;
/// * in-memory, with guarantees → DSTree;
/// * on-disk, no guarantees → DSTree or iSAX2+ (iSAX2+ when indexing time
///   dominates, i.e. small workloads);
/// * on-disk, with guarantees → DSTree.
pub fn recommend(scenario: Scenario) -> Recommendation {
    match (scenario.in_memory, scenario.needs_guarantees, scenario.small_workload) {
        (true, false, false) => Recommendation {
            method: "HNSW",
            rationale: "best in-memory ng-approximate throughput/accuracy when the index already exists",
        },
        (true, false, true) => Recommendation {
            method: "iSAX2+",
            rationale: "cheapest index construction amortized over a small ng workload",
        },
        (true, true, _) => Recommendation {
            method: "DSTree",
            rationale: "best guarantee-carrying accuracy/efficiency tradeoff in memory",
        },
        (false, false, true) => Recommendation {
            method: "iSAX2+",
            rationale: "fastest index build; wins when only ~100 queries amortize it",
        },
        (false, false, false) => Recommendation {
            method: "DSTree",
            rationale: "best on-disk ng-approximate performance for large workloads",
        },
        (false, true, _) => Recommendation {
            method: "DSTree",
            rationale: "best on-disk performance with epsilon/delta-epsilon guarantees",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_writer_produces_well_formed_output() {
        let mut w = CsvWriter::new(&["figure", "method", "x", "y"]);
        w.row(["fig3a", "DSTree", "0.5", "120"]);
        w.row(["fig3a", "a,b", "0.9", "10"]);
        let text = w.as_str();
        assert!(text.starts_with("figure,method,x,y\n"));
        assert!(text.contains("\"a,b\""));
        assert_eq!(w.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn csv_writer_rejects_ragged_rows() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(["only-one"]);
    }

    #[test]
    fn recommendations_match_figure_9() {
        // In-memory without guarantees: HNSW (large workload).
        assert_eq!(
            recommend(Scenario {
                in_memory: true,
                needs_guarantees: false,
                small_workload: false
            })
            .method,
            "HNSW"
        );
        // In-memory with guarantees: DSTree.
        assert_eq!(
            recommend(Scenario {
                in_memory: true,
                needs_guarantees: true,
                small_workload: false
            })
            .method,
            "DSTree"
        );
        // On-disk with guarantees: DSTree.
        assert_eq!(
            recommend(Scenario {
                in_memory: false,
                needs_guarantees: true,
                small_workload: true
            })
            .method,
            "DSTree"
        );
        // On-disk, no guarantees, small workload: iSAX2+ (indexing wins).
        assert_eq!(
            recommend(Scenario {
                in_memory: false,
                needs_guarantees: false,
                small_workload: true
            })
            .method,
            "iSAX2+"
        );
        // On-disk, no guarantees, large workload: DSTree.
        assert_eq!(
            recommend(Scenario {
                in_memory: false,
                needs_guarantees: false,
                small_workload: false
            })
            .method,
            "DSTree"
        );
    }
}
