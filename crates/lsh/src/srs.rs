//! SRS: solving c-approximate NN queries with a tiny index.

use std::path::Path;

use hydra_core::{
    AnnIndex, Capabilities, Dataset, Error, Neighbor, QueryStats, Representation, Result,
    SearchMode, SearchParams, SearchResult, TopK,
};
use hydra_persist::{
    fingerprint_dataset, DataSource, Fingerprint, PersistError, PersistentIndex, Section,
    SeriesFingerprinter, SnapshotReader, SnapshotWriter, StoreBacking,
};
use hydra_storage::{SeriesStore, StorageConfig};
use hydra_summarize::GaussianProjection;

use crate::stats::chi_squared_cdf;

/// Configuration of an [`Srs`] index.
#[derive(Debug, Clone, Copy)]
pub struct SrsConfig {
    /// Number of projected dimensions `m` (the paper uses 16 so the
    /// projections of all datasets fit in memory).
    pub projected_dims: usize,
    /// Maximum fraction of the dataset examined per query (the `t`
    /// parameter of SRS; examining everything degenerates to a linear scan).
    pub max_examined_fraction: f64,
    /// Simulated storage configuration for the raw series.
    pub storage: StorageConfig,
    /// RNG seed for the projection matrix.
    pub seed: u64,
}

impl Default for SrsConfig {
    fn default() -> Self {
        Self {
            projected_dims: 16,
            max_examined_fraction: 0.4,
            storage: StorageConfig::on_disk(),
            seed: 0x5125,
        }
    }
}

/// The SRS index: projected signatures in memory, raw data on (simulated)
/// disk.
pub struct Srs {
    config: SrsConfig,
    series_len: usize,
    projection: GaussianProjection,
    /// Projected points, flattened (`n × m`).
    projected: Vec<f32>,
    store: SeriesStore,
    num_series: usize,
    /// Content fingerprint of the dataset, captured at build/load time so
    /// snapshotting never has to re-read the (possibly file-backed) store.
    data_fingerprint: u64,
    /// Whether series were ingested after the build/load: the cached
    /// `data_fingerprint` then covers only the base collection, so a save
    /// recomputes it from an unaccounted store scan.
    grown: bool,
}

impl Srs {
    /// Builds an SRS index over `dataset`.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty or the configuration is
    /// invalid.
    pub fn build(dataset: &Dataset, config: SrsConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if config.projected_dims == 0 {
            return Err(Error::InvalidParameter(
                "projected dimensionality must be positive".into(),
            ));
        }
        let m = config.projected_dims;
        let projection = GaussianProjection::new(dataset.series_len(), m, config.seed);
        let mut projected = Vec::with_capacity(dataset.len() * m);
        for s in dataset.iter() {
            projected.extend_from_slice(&projection.project(s));
        }
        let store = SeriesStore::from_dataset(dataset, config.storage)?;
        store.reset_io();
        Ok(Self {
            config,
            series_len: dataset.series_len(),
            projection,
            projected,
            store,
            num_series: dataset.len(),
            data_fingerprint: fingerprint_dataset(dataset),
            grown: false,
        })
    }

    /// The content fingerprint of the indexed collection, recomputed from
    /// the store when the index has grown past its build/load baseline.
    fn current_data_fingerprint(&self) -> u64 {
        if !self.grown {
            return self.data_fingerprint;
        }
        let mut f = SeriesFingerprinter::new(self.series_len, self.num_series);
        self.store.for_each_series(&mut |_, s| {
            f.push_series(s);
        });
        f.finish()
    }

    fn projected_point(&self, id: usize) -> &[f32] {
        let m = self.config.projected_dims;
        &self.projected[id * m..(id + 1) * m]
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SrsConfig {
        &self.config
    }

    /// The simulated storage layer holding the raw series.
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// Shared precondition check of [`AnnIndex::search`] and
    /// [`AnnIndex::search_batch`] (dimension first, then mode — one code
    /// path so the two entry points cannot drift apart).
    fn validate(&self, query: &[f32], params: &SearchParams) -> Result<()> {
        if query.len() != self.series_len {
            return Err(Error::DimensionMismatch {
                expected: self.series_len,
                found: query.len(),
            });
        }
        if matches!(params.mode, SearchMode::Exact) {
            return Err(Error::UnsupportedMode(
                "SRS does not guarantee exact answers".into(),
            ));
        }
        Ok(())
    }

    /// Incremental search in the projected space with the SRS
    /// early-termination test.
    ///
    /// Points are examined in increasing projected distance. For 2-stable
    /// projections, `‖proj(o−q)‖² / ‖o−q‖²` follows a χ²_m distribution, so
    /// once `χ²_m-CDF(proj_next² / (bsf/(1+ε))²)` exceeds δ, any unexamined
    /// point is closer than `bsf/(1+ε)` with probability below `1 − δ`, and
    /// the current answer is δ-ε-correct.
    ///
    /// `order` is a reusable scratch buffer for the ranked projected
    /// distances (one entry per stored point, cleared on entry); batched
    /// callers allocate it once per batch.
    fn search_impl(
        &self,
        query: &[f32],
        params: &SearchParams,
        order: &mut Vec<(f32, usize)>,
    ) -> SearchResult {
        let mut stats = QueryStats::new();
        let k = params.k.max(1);
        let (epsilon, delta, budget) = match params.mode {
            SearchMode::Ng { nprobe } => (0.0f32, 1.0f32, nprobe.max(1)),
            SearchMode::Epsilon { epsilon } => (
                epsilon,
                1.0,
                (self.num_series as f64 * self.config.max_examined_fraction).ceil() as usize,
            ),
            SearchMode::DeltaEpsilon { epsilon, delta } => (
                epsilon,
                delta,
                (self.num_series as f64 * self.config.max_examined_fraction).ceil() as usize,
            ),
            SearchMode::Exact => (0.0, 1.0, self.num_series),
        };
        let one_plus_eps = 1.0 + epsilon.max(0.0);
        let m = self.config.projected_dims;

        // Rank all points by projected distance (the projected table is tiny
        // and lives in memory — this is SRS's linear-size index).
        let qp = self.projection.project(query);
        order.clear();
        order.reserve(self.num_series);
        order.extend((0..self.num_series).map(|id| {
            stats.lower_bound_computations += 1;
            (
                hydra_core::squared_euclidean(&qp, self.projected_point(id)),
                id,
            )
        }));
        order.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut top = TopK::new(k);
        let mut examined = 0usize;
        for &(proj_sq, id) in order.iter() {
            if examined >= budget.max(k) {
                break;
            }
            // Early-termination test (skipped for exact / ng modes where
            // delta = 1 never triggers it before the budget runs out).
            let bsf = top.kth_distance();
            if top.is_full() && bsf.is_finite() && delta < 1.0 {
                let r = (bsf / one_plus_eps) as f64;
                if r > 0.0 {
                    let statistic = proj_sq as f64 / (r * r);
                    if chi_squared_cdf(statistic, m) >= delta as f64 {
                        stats.delta_stop_triggered = true;
                        break;
                    }
                }
            }
            stats.series_scanned += 1;
            stats.distance_computations += 1;
            if let Some(d) = self.store.refine(id, query, top.kth_distance(), &mut stats) {
                top.push(Neighbor::new(id, d));
            }
            examined += 1;
        }
        stats.leaves_visited = examined as u64;
        SearchResult::new(top.into_sorted(), stats)
    }

    /// The first `prefix` records [`Srs::search_impl`] would examine for
    /// `query`: the smallest projected distances, computed uncharged (no
    /// stats, no store reads) so the batch scheduler can declare a working
    /// set before any query runs. Appends one single-record range per
    /// candidate.
    fn predicted_candidates(&self, query: &[f32], prefix: usize, out: &mut Vec<(usize, usize)>) {
        let qp = self.projection.project(query);
        let mut order: Vec<(f32, usize)> = (0..self.num_series)
            .map(|id| {
                (
                    hydra_core::squared_euclidean(&qp, self.projected_point(id)),
                    id,
                )
            })
            .collect();
        let cut = prefix.min(order.len());
        if cut == 0 {
            return;
        }
        if cut < order.len() {
            order.select_nth_unstable_by(cut - 1, |a, b| a.0.total_cmp(&b.0));
        }
        out.extend(order[..cut].iter().map(|&(_, id)| (id, 1)));
    }
}

/// Everything that shapes an SRS build, hashed together with the dataset
/// content (see [`PersistentIndex`]). The storage configuration is
/// deliberately **not** hashed — it shapes only I/O economics, never the
/// projected table or its answers, so a snapshot may be served with any
/// pool (`--pool-pages`) and either backing.
fn snapshot_fingerprint(config: &SrsConfig, data_fingerprint: u64) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(Srs::KIND);
    f.push_usize(config.projected_dims);
    f.push_f64(config.max_examined_fraction);
    f.push_u64(config.seed);
    f.push_u64(data_fingerprint);
    f.finish()
}

impl PersistentIndex for Srs {
    type Config = SrsConfig;
    const KIND: &'static str = "srs";

    /// Snapshots the projected table — SRS's "tiny index", whose
    /// construction is the one full pass over the raw data the method ever
    /// makes. The Gaussian projection matrix is deterministic in the seed
    /// and is re-sampled at load time; the raw series store is re-created
    /// from the dataset.
    fn save(&self, path: &Path) -> hydra_persist::Result<()> {
        let mut w = SnapshotWriter::new(
            Self::KIND,
            snapshot_fingerprint(&self.config, self.current_data_fingerprint()),
        );

        let mut meta = Section::new();
        meta.put_usize(self.series_len);
        meta.put_usize(self.num_series);
        meta.put_usize(self.config.projected_dims);
        w.push(meta);

        let mut projected = Section::new();
        projected.put_f32s(&self.projected);
        w.push(projected);

        w.write_to(path)
    }

    fn load(path: &Path, dataset: &Dataset, config: &SrsConfig) -> hydra_persist::Result<Self> {
        Self::load_backed(path, dataset, config, StoreBacking::Resident)
    }

    fn load_backed(
        path: &Path,
        dataset: &Dataset,
        config: &SrsConfig,
        backing: StoreBacking<'_>,
    ) -> hydra_persist::Result<Self> {
        Self::load_from(path, DataSource::InMemory(dataset), config, backing)
    }

    /// Loads without ever materializing a streamed dataset: shape and
    /// fingerprint come from the source's header facts, and the raw series
    /// re-attach straight from the validated snapshot file.
    fn load_from(
        path: &Path,
        source: DataSource<'_>,
        config: &SrsConfig,
        backing: StoreBacking<'_>,
    ) -> hydra_persist::Result<Self> {
        let data_fingerprint = source.fingerprint();
        let mut r = SnapshotReader::open(path)?;
        r.expect_kind(Self::KIND)?;
        r.expect_fingerprint(snapshot_fingerprint(config, data_fingerprint))?;

        let mut meta = r.next_section()?;
        let series_len = meta.get_usize()?;
        let num_series = meta.get_usize()?;
        let m = meta.get_usize()?;
        if series_len != source.series_len() || num_series != source.len() || m != config.projected_dims
        {
            return Err(PersistError::Corrupt(
                "snapshot metadata disagrees with the dataset or configuration".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let projected = sec.get_f32s()?;
        if projected.len() != num_series * m {
            return Err(PersistError::Corrupt(
                "projected table does not cover every series".into(),
            ));
        }

        let store = hydra_persist::backing::attach_dataset_order_store_from(
            path,
            source,
            config.storage,
            backing,
        )?;

        Ok(Self {
            config: *config,
            series_len,
            projection: GaussianProjection::new(series_len, m, config.seed),
            projected,
            store,
            num_series,
            data_fingerprint,
            grown: false,
        })
    }
}

impl AnnIndex for Srs {
    fn name(&self) -> &'static str {
        "SRS"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: false,
            ng_approximate: true,
            epsilon_approximate: true,
            delta_epsilon_approximate: true,
            disk_resident: true,
            streaming_insert: true,
            representation: Representation::Signatures,
        }
    }

    fn num_series(&self) -> usize {
        self.num_series
    }

    fn series_len(&self) -> usize {
        self.series_len
    }

    fn memory_footprint(&self) -> usize {
        self.projected.len() * std::mem::size_of::<f32>() + self.projection.memory_footprint()
    }

    fn store_counters(&self) -> Option<hydra_core::StoreCounters> {
        Some(self.store.counters())
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        self.validate(query, params)?;
        let mut order = Vec::new();
        Ok(self.search_impl(query, params, &mut order))
    }

    /// Batched search: the ranked-projection buffer (one entry per stored
    /// point) is allocated once and reused across the batch. Answers,
    /// per-query CPU counters and errors are identical to [`Self::search`];
    /// as for every disk-backed method, the I/O-operation counters depend
    /// on the shared buffer pool's warm-up order.
    ///
    /// On a file-backed store the batch also declares its working set: each
    /// query's ranked top-candidate prefix — the records its incremental
    /// scan examines first — is pinned in the buffer pool for the duration
    /// of the batch, so candidates shared across queries stay resident
    /// instead of being evicted between queries. No prefetch: the
    /// candidates are scattered single records, and the early-termination
    /// test may prune them before they are ever read.
    fn search_batch(
        &self,
        queries: &[&[f32]],
        params: &SearchParams,
    ) -> Vec<Result<SearchResult>> {
        let pinned = if self.store.is_file_backed() && queries.len() > 1 {
            let prefix = match params.mode {
                SearchMode::Ng { nprobe } => nprobe.max(1),
                _ => 4 * params.k.max(1),
            };
            let mut ranges = Vec::new();
            for query in queries {
                if query.len() == self.series_len {
                    self.predicted_candidates(query, prefix, &mut ranges);
                }
            }
            self.store.pin_working_set(&ranges, false)
        } else {
            Vec::new()
        };
        let mut order = Vec::with_capacity(self.num_series);
        let results = queries
            .iter()
            .map(|query| {
                self.validate(query, params)?;
                Ok(self.search_impl(query, params, &mut order))
            })
            .collect();
        self.store.release_working_set(&pinned);
        results
    }

    /// Streaming ingest: each new series is projected with the (build-time,
    /// seed-deterministic) Gaussian matrix and appended to the projected
    /// table and the raw store — exactly the per-series work
    /// [`Srs::build`] does, so a grown index is structurally identical to a
    /// fresh build over the same collection.
    fn insert_batch(&mut self, batch: &[&[f32]]) -> Result<()> {
        for series in batch {
            if series.len() != self.series_len {
                return Err(Error::DimensionMismatch {
                    expected: self.series_len,
                    found: series.len(),
                });
            }
        }
        for series in batch {
            self.projected.extend_from_slice(&self.projection.project(series));
            self.store.append(series)?;
            self.num_series += 1;
        }
        if !batch.is_empty() {
            self.grown = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{exact_knn, random_walk};

    fn recall(found: &[Neighbor], truth: &[Neighbor]) -> f64 {
        let ids: std::collections::HashSet<usize> = truth.iter().map(|n| n.index).collect();
        found.iter().filter(|n| ids.contains(&n.index)).count() as f64 / truth.len() as f64
    }

    fn build(n: usize, len: usize) -> (Dataset, Srs) {
        let data = random_walk(n, len, 13);
        let config = SrsConfig {
            projected_dims: 8,
            max_examined_fraction: 0.5,
            storage: StorageConfig::in_memory(),
            seed: 4,
        };
        (data.clone(), Srs::build(&data, config).unwrap())
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let empty = Dataset::new(4).unwrap();
        assert!(Srs::build(&empty, SrsConfig::default()).is_err());
        let one = random_walk(2, 8, 1);
        let bad = SrsConfig {
            projected_dims: 0,
            ..SrsConfig::default()
        };
        assert!(Srs::build(&one, bad).is_err());
    }

    #[test]
    fn delta_epsilon_queries_have_reasonable_recall() {
        let (data, srs) = build(500, 64);
        let queries = random_walk(8, 64, 71);
        let mut total = 0.0;
        for q in queries.iter() {
            let res = srs
                .search(q, &SearchParams::delta_epsilon(10, 0.99, 0.0))
                .unwrap();
            let gt = exact_knn(&data, q, 10);
            total += recall(&res.neighbors, &gt);
        }
        assert!(total / 8.0 > 0.5, "SRS recall too low: {}", total / 8.0);
    }

    #[test]
    fn examined_fraction_bounds_work() {
        let (_, srs) = build(400, 32);
        let q_owned = random_walk(1, 32, 2);
        let q = q_owned.series(0);
        let res = srs
            .search(q, &SearchParams::delta_epsilon(5, 0.9, 1.0))
            .unwrap();
        assert!(res.stats.series_scanned <= 200 + 5);
        // ng mode examines exactly nprobe raw series (or fewer).
        let ng = srs.search(q, &SearchParams::ng(5, 20)).unwrap();
        assert!(ng.stats.series_scanned <= 20);
    }

    #[test]
    fn larger_epsilon_examines_no_more_data() {
        let (_, srs) = build(400, 32);
        let q_owned = random_walk(1, 32, 6);
        let q = q_owned.series(0);
        let tight = srs
            .search(q, &SearchParams::delta_epsilon(5, 0.9, 0.0))
            .unwrap();
        let loose = srs
            .search(q, &SearchParams::delta_epsilon(5, 0.9, 4.0))
            .unwrap();
        assert!(loose.stats.series_scanned <= tight.stats.series_scanned);
    }

    #[test]
    fn batch_search_matches_per_query_search() {
        let (_, srs) = build(400, 32);
        let queries = random_walk(5, 32, 19);
        let refs: Vec<&[f32]> = queries.iter().collect();
        let params = SearchParams::delta_epsilon(5, 0.9, 1.0);
        let batched = srs.search_batch(&refs, &params);
        for (q, b) in refs.iter().zip(batched.iter()) {
            let s = srs.search(q, &params).unwrap();
            let b = b.as_ref().unwrap();
            assert_eq!(b.neighbors.len(), s.neighbors.len());
            for (x, y) in b.neighbors.iter().zip(s.neighbors.iter()) {
                assert_eq!(x.index, y.index);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
            assert_eq!(b.stats.lower_bound_computations, s.stats.lower_bound_computations);
            assert_eq!(b.stats.series_scanned, s.stats.series_scanned);
        }
        // Exact mode and bad dimensions fail per query.
        let bad = vec![0.0f32; 2];
        let mixed: Vec<&[f32]> = vec![refs[0], &bad];
        let exact = srs.search_batch(&mixed, &SearchParams::exact(1));
        assert!(exact.iter().all(|r| r.is_err()));
        let ng = srs.search_batch(&mixed, &SearchParams::ng(1, 4));
        assert!(ng[0].is_ok() && ng[1].is_err());
    }

    #[test]
    fn exact_mode_is_rejected_and_metadata_consistent() {
        let (_, srs) = build(100, 32);
        let q = vec![0.0f32; 32];
        assert!(srs.search(&q, &SearchParams::exact(1)).is_err());
        assert!(srs.search(&[0.0; 4], &SearchParams::ng(1, 1)).is_err());
        assert_eq!(srs.name(), "SRS");
        assert!(srs.capabilities().delta_epsilon_approximate);
        assert!(srs.capabilities().disk_resident);
        assert!(!srs.capabilities().exact);
        assert_eq!(srs.num_series(), 100);
        assert_eq!(srs.series_len(), 32);
        assert!(srs.memory_footprint() > 0);
        assert_eq!(srs.config().projected_dims, 8);
        assert_eq!(srs.store().len(), 100);
    }
}
