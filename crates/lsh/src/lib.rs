//! # hydra-lsh
//!
//! Locality-sensitive-hashing methods of the Lernaean Hydra study:
//!
//! * [`Srs`] — SRS (Sun et al., PVLDB 2014): projects the data onto a tiny
//!   number of Gaussian directions (2-stable projections), examines points
//!   in increasing *projected* distance order, and stops early using the
//!   χ²-distribution of projected distances. Answers δ-ε-approximate k-NN
//!   with an index of size linear in the dataset.
//! * [`Qalsh`] — QALSH (Huang et al., PVLDB 2015): query-aware LSH with
//!   dynamic collision counting over per-projection sorted lists ("virtual
//!   rehashing" enlarges the search radius geometrically until enough
//!   collisions accumulate).
//!
//! Both keep only signatures in memory and read raw series through the
//! simulated disk layer for refinement, matching the paper's setup where SRS
//! is the only LSH method able to operate on disk-resident data.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod qalsh;
mod srs;
mod stats;

pub use qalsh::{Qalsh, QalshConfig};
pub use srs::{Srs, SrsConfig};
pub use stats::chi_squared_cdf;
