//! QALSH: query-aware locality-sensitive hashing with dynamic collision
//! counting.

use std::path::Path;

use hydra_core::{
    AnnIndex, Capabilities, Dataset, Error, Neighbor, QueryStats, Representation, Result,
    SearchMode, SearchParams, SearchResult, TopK,
};
use hydra_persist::{
    fingerprint_dataset, Fingerprint, PersistError, PersistentIndex, Section, SnapshotReader,
    SnapshotWriter,
};
use hydra_summarize::GaussianProjection;

/// Configuration of a [`Qalsh`] index.
#[derive(Debug, Clone, Copy)]
pub struct QalshConfig {
    /// Number of hash functions (1-D Gaussian projections).
    pub num_hashes: usize,
    /// Bucket half-width `w/2` in units of the projection scale.
    pub bucket_width: f32,
    /// Collision-count threshold: a point becomes a candidate after
    /// colliding with the query in at least this many hash tables.
    pub collision_threshold: usize,
    /// Approximation ratio `c` used by virtual rehashing (radius grows by
    /// this factor each round).
    pub approximation_ratio: f32,
    /// Maximum fraction of the dataset refined per query.
    pub max_refined_fraction: f64,
    /// RNG seed for the projections.
    pub seed: u64,
}

impl Default for QalshConfig {
    fn default() -> Self {
        Self {
            num_hashes: 32,
            bucket_width: 1.0,
            collision_threshold: 8,
            approximation_ratio: 2.0,
            max_refined_fraction: 0.3,
            seed: 0x0A15,
        }
    }
}

/// The QALSH index. Raw vectors are kept in memory (the method is
/// in-memory-only in the paper's study).
pub struct Qalsh {
    config: QalshConfig,
    data: Dataset,
    projection: GaussianProjection,
    /// Per hash function: (projection value, id) sorted by value — the
    /// "B+-tree" of the original implementation.
    tables: Vec<Vec<(f32, u32)>>,
}

impl Qalsh {
    /// Builds a QALSH index over `dataset`.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty or the configuration is
    /// invalid.
    pub fn build(dataset: &Dataset, config: QalshConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if config.num_hashes == 0 || config.collision_threshold == 0 {
            return Err(Error::InvalidParameter(
                "QALSH needs at least one hash function and a positive collision threshold".into(),
            ));
        }
        if config.collision_threshold > config.num_hashes {
            return Err(Error::InvalidParameter(
                "collision threshold cannot exceed the number of hash functions".into(),
            ));
        }
        let projection =
            GaussianProjection::new(dataset.series_len(), config.num_hashes, config.seed);
        let mut tables = Vec::with_capacity(config.num_hashes);
        for h in 0..config.num_hashes {
            let mut table: Vec<(f32, u32)> = dataset
                .iter()
                .enumerate()
                .map(|(id, s)| (projection.project_one(s, h), id as u32))
                .collect();
            table.sort_by(|a, b| a.0.total_cmp(&b.0));
            tables.push(table);
        }
        Ok(Self {
            config,
            data: dataset.clone(),
            projection,
            tables,
        })
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &QalshConfig {
        &self.config
    }

    /// Shared precondition check of [`AnnIndex::search`] and
    /// [`AnnIndex::search_batch`] (dimension first, then mode — one code
    /// path so the two entry points cannot drift apart).
    fn validate(&self, query: &[f32], params: &SearchParams) -> Result<()> {
        if query.len() != self.data.series_len() {
            return Err(Error::DimensionMismatch {
                expected: self.data.series_len(),
                found: query.len(),
            });
        }
        match params.mode {
            SearchMode::Exact => Err(Error::UnsupportedMode(
                "QALSH does not guarantee exact answers".into(),
            )),
            SearchMode::Epsilon { .. } => Err(Error::UnsupportedMode(
                "QALSH guarantees are probabilistic (use delta-epsilon)".into(),
            )),
            _ => Ok(()),
        }
    }

    /// Query-aware search with virtual rehashing.
    ///
    /// `collisions` and `refined` are reusable per-point scratch buffers
    /// (reset on entry); batched callers allocate them once per batch.
    fn search_impl(
        &self,
        query: &[f32],
        params: &SearchParams,
        collisions: &mut Vec<u16>,
        refined: &mut Vec<bool>,
    ) -> SearchResult {
        let mut stats = QueryStats::new();
        let k = params.k.max(1);
        let n = self.data.len();
        let max_refined =
            ((n as f64 * self.config.max_refined_fraction).ceil() as usize).max(k);
        let epsilon = params.mode.epsilon().max(0.0);
        let c = self.config.approximation_ratio.max(1.0 + epsilon).max(1.01);

        // Per-table query projections and cursors expanding outwards from
        // the query's position (query-aware: buckets are anchored on the
        // query itself).
        let q_proj: Vec<f32> = (0..self.config.num_hashes)
            .map(|h| self.projection.project_one(query, h))
            .collect();
        let starts: Vec<usize> = self
            .tables
            .iter()
            .zip(q_proj.iter())
            .map(|(table, &qp)| table.partition_point(|(v, _)| *v < qp))
            .collect();
        let mut lo: Vec<isize> = starts.iter().map(|&s| s as isize - 1).collect();
        let mut hi: Vec<usize> = starts.clone();

        collisions.clear();
        collisions.resize(n, 0);
        refined.clear();
        refined.resize(n, false);
        let mut top = TopK::new(k);
        let mut refined_count = 0usize;

        // Virtual rehashing: radius grows geometrically; in each round every
        // table absorbs the points whose projection falls within w/2 · R of
        // the query projection, updating collision counts.
        let mut radius = self.config.bucket_width;
        let mut rounds = 0usize;
        while refined_count < max_refined && rounds < 64 {
            rounds += 1;
            let mut progressed = false;
            for h in 0..self.config.num_hashes {
                let table = &self.tables[h];
                let window = radius * self.config.bucket_width;
                // Expand right cursor.
                while hi[h] < table.len() && (table[hi[h]].0 - q_proj[h]).abs() <= window {
                    let id = table[hi[h]].1 as usize;
                    collisions[id] += 1;
                    hi[h] += 1;
                    progressed = true;
                    if collisions[id] as usize >= self.config.collision_threshold && !refined[id] {
                        refined[id] = true;
                        refined_count += 1;
                        stats.series_scanned += 1;
                        stats.distance_computations += 1;
                        if let Some(d) = hydra_core::euclidean_early_abandon(
                            query,
                            self.data.series(id),
                            top.kth_distance(),
                        ) {
                            top.push(Neighbor::new(id, d));
                        }
                    }
                }
                // Expand left cursor.
                while lo[h] >= 0 && (q_proj[h] - table[lo[h] as usize].0).abs() <= window {
                    let id = table[lo[h] as usize].1 as usize;
                    collisions[id] += 1;
                    lo[h] -= 1;
                    progressed = true;
                    if collisions[id] as usize >= self.config.collision_threshold && !refined[id] {
                        refined[id] = true;
                        refined_count += 1;
                        stats.series_scanned += 1;
                        stats.distance_computations += 1;
                        if let Some(d) = hydra_core::euclidean_early_abandon(
                            query,
                            self.data.series(id),
                            top.kth_distance(),
                        ) {
                            top.push(Neighbor::new(id, d));
                        }
                    }
                }
                if refined_count >= max_refined {
                    break;
                }
            }
            // Termination test: the k-th best distance is within c·R, so with
            // high probability no unexamined point can improve it by more
            // than the approximation ratio.
            if top.is_full() && top.kth_distance() <= c * radius {
                stats.delta_stop_triggered = true;
                break;
            }
            if !progressed && hi.iter().enumerate().all(|(h, &x)| x >= self.tables[h].len())
                && lo.iter().all(|&x| x < 0)
            {
                break;
            }
            radius *= c;
        }
        stats.leaves_visited = rounds as u64;
        SearchResult::new(top.into_sorted(), stats)
    }
}

/// Everything that shapes a QALSH build, hashed together with the dataset
/// content (see [`PersistentIndex`]).
fn snapshot_fingerprint(config: &QalshConfig, data_fingerprint: u64) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(Qalsh::KIND);
    f.push_usize(config.num_hashes);
    f.push_f32(config.bucket_width);
    f.push_usize(config.collision_threshold);
    f.push_f32(config.approximation_ratio);
    f.push_f64(config.max_refined_fraction);
    f.push_u64(config.seed);
    f.push_u64(data_fingerprint);
    f.finish()
}

impl PersistentIndex for Qalsh {
    type Config = QalshConfig;
    const KIND: &'static str = "qalsh";

    /// Snapshots the sorted hash tables (the "B+-trees" of the original
    /// implementation, one per hash function). The projection matrix is
    /// deterministic in the seed and the raw vectors are re-attached from
    /// the dataset, so neither is stored.
    fn save(&self, path: &Path) -> hydra_persist::Result<()> {
        let mut w = SnapshotWriter::new(
            Self::KIND,
            snapshot_fingerprint(&self.config, fingerprint_dataset(&self.data)),
        );

        let mut meta = Section::new();
        meta.put_usize(self.data.series_len());
        meta.put_usize(self.data.len());
        meta.put_usize(self.tables.len());
        w.push(meta);

        let mut tables = Section::new();
        for table in &self.tables {
            tables.put_usize(table.len());
            for &(value, id) in table {
                tables.put_f32(value);
                tables.put_u32(id);
            }
        }
        w.push(tables);

        w.write_to(path)
    }

    fn load(path: &Path, dataset: &Dataset, config: &QalshConfig) -> hydra_persist::Result<Self> {
        let mut r = SnapshotReader::open(path)?;
        r.expect_kind(Self::KIND)?;
        r.expect_fingerprint(snapshot_fingerprint(config, fingerprint_dataset(dataset)))?;

        let mut meta = r.next_section()?;
        let series_len = meta.get_usize()?;
        let n = meta.get_usize()?;
        let table_count = meta.get_usize()?;
        if series_len != dataset.series_len() || n != dataset.len() || table_count != config.num_hashes
        {
            return Err(PersistError::Corrupt(
                "snapshot metadata disagrees with the dataset or configuration".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let mut tables = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            let len = sec.get_usize()?;
            if len != n {
                return Err(PersistError::Corrupt(
                    "hash table does not cover every point".into(),
                ));
            }
            let mut table = Vec::with_capacity(len);
            for _ in 0..len {
                let value = sec.get_f32()?;
                let id = sec.get_u32()?;
                if id as usize >= n {
                    return Err(PersistError::Corrupt(format!(
                        "hash table id {id} out of range"
                    )));
                }
                table.push((value, id));
            }
            tables.push(table);
        }

        Ok(Self {
            config: *config,
            data: dataset.clone(),
            projection: GaussianProjection::new(series_len, config.num_hashes, config.seed),
            tables,
        })
    }
}

impl AnnIndex for Qalsh {
    fn name(&self) -> &'static str {
        "QALSH"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: false,
            ng_approximate: true,
            epsilon_approximate: false,
            delta_epsilon_approximate: true,
            disk_resident: false,
            streaming_insert: false,
            representation: Representation::Signatures,
        }
    }

    fn num_series(&self) -> usize {
        self.data.len()
    }

    fn series_len(&self) -> usize {
        self.data.series_len()
    }

    fn memory_footprint(&self) -> usize {
        // Hash tables plus the raw data QALSH keeps in memory.
        self.tables
            .iter()
            .map(|t| t.len() * (std::mem::size_of::<f32>() + std::mem::size_of::<u32>()))
            .sum::<usize>()
            + self.projection.memory_footprint()
            + self.data.payload_bytes()
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        self.validate(query, params)?;
        let mut collisions = Vec::new();
        let mut refined = Vec::new();
        Ok(self.search_impl(query, params, &mut collisions, &mut refined))
    }

    /// Batched search: the per-point collision-count and refinement bitmaps
    /// are allocated once and reused across the batch. Answers, per-query
    /// stats and errors are identical to [`Self::search`].
    fn search_batch(
        &self,
        queries: &[&[f32]],
        params: &SearchParams,
    ) -> Vec<Result<SearchResult>> {
        let n = self.data.len();
        let mut collisions = Vec::with_capacity(n);
        let mut refined = Vec::with_capacity(n);
        queries
            .iter()
            .map(|query| {
                self.validate(query, params)?;
                Ok(self.search_impl(query, params, &mut collisions, &mut refined))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{exact_knn, random_walk};

    fn recall(found: &[Neighbor], truth: &[Neighbor]) -> f64 {
        let ids: std::collections::HashSet<usize> = truth.iter().map(|n| n.index).collect();
        found.iter().filter(|n| ids.contains(&n.index)).count() as f64 / truth.len() as f64
    }

    fn build(n: usize, len: usize) -> (Dataset, Qalsh) {
        let data = random_walk(n, len, 29);
        let config = QalshConfig {
            num_hashes: 24,
            bucket_width: 1.0,
            collision_threshold: 6,
            approximation_ratio: 2.0,
            max_refined_fraction: 0.4,
            seed: 8,
        };
        (data.clone(), Qalsh::build(&data, config).unwrap())
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let empty = Dataset::new(4).unwrap();
        assert!(Qalsh::build(&empty, QalshConfig::default()).is_err());
        let one = random_walk(4, 8, 1);
        assert!(Qalsh::build(
            &one,
            QalshConfig {
                num_hashes: 0,
                ..QalshConfig::default()
            }
        )
        .is_err());
        assert!(Qalsh::build(
            &one,
            QalshConfig {
                num_hashes: 4,
                collision_threshold: 10,
                ..QalshConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn delta_epsilon_queries_have_reasonable_recall() {
        let (data, q) = build(500, 64);
        let queries = random_walk(8, 64, 3);
        let mut total = 0.0;
        for query in queries.iter() {
            let res = q
                .search(query, &SearchParams::delta_epsilon(10, 0.9, 1.0))
                .unwrap();
            let gt = exact_knn(&data, query, 10);
            total += recall(&res.neighbors, &gt);
        }
        assert!(total / 8.0 > 0.4, "QALSH recall too low: {}", total / 8.0);
    }

    #[test]
    fn refinement_budget_is_respected() {
        let (data, q) = build(400, 32);
        let query = data.series(7);
        let res = q
            .search(query, &SearchParams::delta_epsilon(5, 0.9, 1.0))
            .unwrap();
        assert!(res.stats.series_scanned as usize <= 400);
        assert!(res.stats.series_scanned as usize <= (400.0 * 0.4) as usize + 5);
        assert!(!res.neighbors.is_empty());
    }

    #[test]
    fn batch_search_matches_per_query_search() {
        let (_, q) = build(300, 32);
        let queries = random_walk(5, 32, 23);
        let refs: Vec<&[f32]> = queries.iter().collect();
        let params = SearchParams::delta_epsilon(5, 0.9, 1.0);
        let batched = q.search_batch(&refs, &params);
        for (query, b) in refs.iter().zip(batched.iter()) {
            let s = q.search(query, &params).unwrap();
            let b = b.as_ref().unwrap();
            assert_eq!(b.stats, s.stats, "scratch reuse must not change stats");
            assert_eq!(b.neighbors.len(), s.neighbors.len());
            for (x, y) in b.neighbors.iter().zip(s.neighbors.iter()) {
                assert_eq!(x.index, y.index);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
        let bad = vec![0.0f32; 2];
        let mixed: Vec<&[f32]> = vec![refs[0], &bad];
        let results = q.search_batch(&mixed, &SearchParams::ng(1, 4));
        assert!(results[0].is_ok() && results[1].is_err());
        assert!(q
            .search_batch(&mixed, &SearchParams::exact(1))
            .iter()
            .all(|r| r.is_err()));
    }

    #[test]
    fn unsupported_modes_are_rejected() {
        let (_, q) = build(100, 32);
        let query = vec![0.0f32; 32];
        assert!(q.search(&query, &SearchParams::exact(1)).is_err());
        assert!(q.search(&query, &SearchParams::epsilon(1, 1.0)).is_err());
        assert!(q.search(&query, &SearchParams::ng(1, 5)).is_ok());
        assert!(q.search(&[0.0; 3], &SearchParams::ng(1, 5)).is_err());
    }

    #[test]
    fn metadata_is_consistent() {
        let (_, q) = build(150, 32);
        assert_eq!(q.name(), "QALSH");
        assert!(!q.capabilities().disk_resident);
        assert!(q.capabilities().delta_epsilon_approximate);
        assert_eq!(q.num_series(), 150);
        assert_eq!(q.series_len(), 32);
        assert!(q.memory_footprint() > 150 * 32 * 4);
        assert_eq!(q.config().num_hashes, 24);
    }
}
