//! Statistical helpers for the LSH early-termination tests.

/// Regularized lower incomplete gamma function `P(a, x)`, computed with the
/// series expansion for `x < a + 1` and the continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn lower_incomplete_gamma_regularized(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if a <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-12 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x); P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-12 {
                break;
            }
        }
        1.0 - (-x + a * x.ln() - ln_gamma(a)).exp() * h
    }
}

/// CDF of the χ² distribution with `k` degrees of freedom.
///
/// For 2-stable (Gaussian) projections onto `k` directions, the squared
/// projected distance divided by the squared original distance follows a χ²
/// distribution with `k` degrees of freedom — the fact underlying SRS's
/// early-termination test.
pub fn chi_squared_cdf(x: f64, k: usize) -> f64 {
    lower_incomplete_gamma_regularized(k as f64 / 2.0, x / 2.0)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-9);
        assert!((ln_gamma(2.0)).abs() < 1e-9);
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn chi_squared_cdf_known_values() {
        // Median of chi2 with 2 dof is 2 ln 2 ≈ 1.386.
        assert!((chi_squared_cdf(2.0 * std::f64::consts::LN_2, 2) - 0.5).abs() < 1e-6);
        // CDF is 0 at 0 and approaches 1 for large x.
        assert_eq!(chi_squared_cdf(0.0, 4), 0.0);
        assert!(chi_squared_cdf(100.0, 4) > 0.9999);
        // Monotone in x.
        assert!(chi_squared_cdf(1.0, 6) < chi_squared_cdf(2.0, 6));
        // More degrees of freedom shift mass right.
        assert!(chi_squared_cdf(3.0, 2) > chi_squared_cdf(3.0, 8));
    }

    #[test]
    fn incomplete_gamma_edge_cases() {
        assert_eq!(lower_incomplete_gamma_regularized(2.0, 0.0), 0.0);
        assert_eq!(lower_incomplete_gamma_regularized(2.0, -1.0), 0.0);
        assert!((0.0..=1.0).contains(&lower_incomplete_gamma_regularized(3.0, 2.5)));
        assert!((0.0..=1.0).contains(&lower_incomplete_gamma_regularized(3.0, 25.0)));
    }
}
