//! Split policies of the DSTree.

use hydra_summarize::apca::{segment_stats, Segment};

/// Which per-segment statistic a horizontal split partitions on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Partition on the segment mean.
    Mean,
    /// Partition on the segment standard deviation.
    Std,
}

/// A horizontal split rule: series whose statistic over `segment` is below
/// `threshold` go to the left child, the rest to the right child.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitRule {
    /// Index of the segment (in the node's own segmentation) the rule
    /// evaluates.
    pub segment: usize,
    /// Statistic used.
    pub kind: SplitKind,
    /// Split threshold.
    pub threshold: f32,
}

impl SplitRule {
    /// Evaluates the rule on a series: `true` routes to the left child.
    pub fn goes_left(&self, series: &[f32], segments: &[Segment]) -> bool {
        let stats = segment_stats(series, segments[self.segment]);
        let value = match self.kind {
            SplitKind::Mean => stats.mean,
            SplitKind::Std => stats.std,
        };
        value <= self.threshold
    }
}

/// A candidate split considered by the quality-of-split heuristic.
#[derive(Debug, Clone)]
pub struct SplitCandidate {
    /// The (possibly refined) segmentation the children will use.
    pub segments: Vec<Segment>,
    /// The horizontal rule applied on that segmentation.
    pub rule: SplitRule,
    /// Quality-of-split score (higher is better).
    pub score: f32,
    /// Whether this candidate refines the segmentation (vertical split).
    pub vertical: bool,
}

/// Enumerates horizontal and vertical split candidates for a leaf holding
/// `series`, scoring each by the expected reduction of the node's
/// lower-bound slack.
///
/// The score of splitting segment `s` on statistic `x` is
/// `len(s) · range(x)²` — the contribution of that segment's synopsis range
/// to the worst-case gap between the lower bound and true distances. A
/// vertical candidate halves the widest segment first, paying a small
/// penalty so it is only preferred when clearly better (matching the
//  original DSTree's bias towards horizontal splits).
pub fn enumerate_candidates(
    series: &[&[f32]],
    segments: &[Segment],
    max_segments: usize,
) -> Vec<SplitCandidate> {
    let mut candidates = Vec::new();
    if series.is_empty() {
        return candidates;
    }
    for (s, seg) in segments.iter().enumerate() {
        for kind in [SplitKind::Mean, SplitKind::Std] {
            if let Some((score, threshold)) = score_split(series, *seg, kind) {
                candidates.push(SplitCandidate {
                    segments: segments.to_vec(),
                    rule: SplitRule {
                        segment: s,
                        kind,
                        threshold,
                    },
                    score,
                    vertical: false,
                });
            }
        }
        // Vertical candidate: refine this segment into two halves (only if
        // it is long enough and the segmentation budget allows it).
        if seg.len() >= 2 && segments.len() < max_segments {
            let mid = seg.start + seg.len() / 2;
            let mut refined = segments.to_vec();
            refined[s] = Segment {
                start: seg.start,
                end: mid,
            };
            refined.insert(
                s + 1,
                Segment {
                    start: mid,
                    end: seg.end,
                },
            );
            for (sub, offset) in [(refined[s], 0usize), (refined[s + 1], 1usize)] {
                for kind in [SplitKind::Mean, SplitKind::Std] {
                    if let Some((score, threshold)) = score_split(series, sub, kind) {
                        candidates.push(SplitCandidate {
                            segments: refined.clone(),
                            rule: SplitRule {
                                segment: s + offset,
                                kind,
                                threshold,
                            },
                            // Mild penalty: vertical splits grow the synopsis.
                            score: score * 0.9,
                            vertical: true,
                        });
                    }
                }
            }
        }
    }
    candidates
}

/// Scores a horizontal split of `seg` on `kind` and proposes a threshold
/// (the median of the statistic, which balances the children). Returns
/// `None` when the statistic is constant (splitting would be useless).
fn score_split(series: &[&[f32]], seg: Segment, kind: SplitKind) -> Option<(f32, f32)> {
    let mut values: Vec<f32> = series
        .iter()
        .map(|s| {
            let st = segment_stats(s, seg);
            match kind {
                SplitKind::Mean => st.mean,
                SplitKind::Std => st.std,
            }
        })
        .collect();
    values.sort_by(f32::total_cmp);
    let min = *values.first()?;
    let max = *values.last()?;
    let range = max - min;
    if range <= f32::EPSILON {
        return None;
    }
    let median = values[values.len() / 2];
    // A threshold equal to the max would send everything left; nudge to the
    // midpoint in that case.
    let threshold = if median >= max { (min + max) / 2.0 } else { median };
    Some((seg.len() as f32 * range * range, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_summarize::apca::uniform_segments;

    #[test]
    fn rule_routes_by_threshold() {
        let segments = uniform_segments(4, 2);
        let rule = SplitRule {
            segment: 0,
            kind: SplitKind::Mean,
            threshold: 1.0,
        };
        assert!(rule.goes_left(&[0.0, 0.0, 9.0, 9.0], &segments));
        assert!(!rule.goes_left(&[5.0, 5.0, 0.0, 0.0], &segments));
        let rule_std = SplitRule {
            segment: 1,
            kind: SplitKind::Std,
            threshold: 0.5,
        };
        assert!(rule_std.goes_left(&[0.0, 0.0, 3.0, 3.0], &segments));
        assert!(!rule_std.goes_left(&[0.0, 0.0, 0.0, 10.0], &segments));
    }

    #[test]
    fn candidates_prefer_discriminative_segments() {
        // Series differ only in the second half: the best candidate must
        // split on segment 1.
        let a = [0.0f32, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let b = [0.0f32, 0.0, 0.0, 0.0, 9.0, 9.0, 9.0, 9.0];
        let c = [0.0f32, 0.0, 0.0, 0.0, 5.0, 5.0, 5.0, 5.0];
        let series: Vec<&[f32]> = vec![&a, &b, &c];
        let segments = uniform_segments(8, 2);
        let candidates = enumerate_candidates(&series, &segments, 8);
        assert!(!candidates.is_empty());
        let best = candidates
            .iter()
            .max_by(|x, y| x.score.total_cmp(&y.score))
            .unwrap();
        assert_eq!(best.rule.segment, 1);
        assert_eq!(best.rule.kind, SplitKind::Mean);
    }

    #[test]
    fn constant_segments_produce_no_horizontal_candidate() {
        let a = [2.0f32, 2.0];
        let b = [2.0f32, 2.0];
        let series: Vec<&[f32]> = vec![&a, &b];
        let segments = uniform_segments(2, 1);
        let candidates = enumerate_candidates(&series, &segments, 4);
        assert!(candidates.is_empty());
    }

    #[test]
    fn vertical_candidates_refine_segmentation() {
        // Identical first halves within each series but differing patterns
        // inside the single segment — a vertical split is required to see it.
        let a = [0.0f32, 0.0, 5.0, 5.0];
        let b = [5.0f32, 5.0, 0.0, 0.0];
        let series: Vec<&[f32]> = vec![&a, &b];
        let segments = uniform_segments(4, 1);
        let candidates = enumerate_candidates(&series, &segments, 4);
        // Means over the whole series are identical (2.5) and stds are
        // identical too, so only vertical candidates can discriminate.
        let has_vertical = candidates.iter().any(|c| c.vertical && c.segments.len() == 2);
        assert!(has_vertical);
        assert!(candidates.iter().all(|c| c.vertical));
    }

    #[test]
    fn vertical_candidates_respect_segment_budget() {
        let a = [0.0f32, 1.0, 2.0, 3.0];
        let b = [3.0f32, 2.0, 1.0, 0.0];
        let series: Vec<&[f32]> = vec![&a, &b];
        let segments = uniform_segments(4, 2);
        let candidates = enumerate_candidates(&series, &segments, 2);
        assert!(candidates.iter().all(|c| !c.vertical));
    }
}
