//! # hydra-dstree
//!
//! The DSTree index (Wang et al., PVLDB 2013): a data-adaptive and dynamic
//! segmentation tree for whole-matching data series similarity search,
//! extended — as in the Lernaean Hydra paper — to answer ng-approximate,
//! ε-approximate and δ-ε-approximate k-NN queries in addition to exact ones.
//!
//! ## How it works
//!
//! Every node carries its own segmentation of the series domain and, for
//! each segment, the range of segment means and standard deviations of all
//! series stored beneath it (the EAPCA synopsis). Leaves store the series
//! themselves (through the simulated disk layer). When a leaf overflows it
//! splits either *horizontally* (partition the series by the mean or the
//! standard deviation of one segment) or *vertically* (first refine the
//! segmentation by splitting one segment in two, then split horizontally on
//! one of the new sub-segments) — the policy with the best quality-of-split
//! score wins.
//!
//! The per-node synopsis yields a lower bound on the Euclidean distance
//! between a query and any series in the subtree, so the generic
//! [`hydra_core::search`] driver (Algorithms 1 and 2 of the paper) provides
//! exact and guarantee-carrying approximate search.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod node;
mod split;

pub use node::{DsTree, DsTreeConfig};
pub use split::{enumerate_candidates, SplitCandidate, SplitKind, SplitRule};
