//! The DSTree index proper.

use std::path::Path;

use hydra_core::{
    knn_search, predict_first_leaf, AnnIndex, Capabilities, Dataset, DistanceHistogram, Error,
    HierarchicalIndex, QueryStats, Representation, Result, SearchParams, SearchResult,
};
use hydra_core::search::SearchSpec;
use hydra_persist::{
    codec, fingerprint_dataset, DataSource, Fingerprint, PersistError, PersistentIndex, Section,
    SeriesFingerprinter, SnapshotReader, SnapshotWriter, StoreBacking,
};
use hydra_storage::{SeriesStore, StorageConfig};
use hydra_summarize::apca::{segment_stats, uniform_segments, Segment};

use crate::split::{enumerate_candidates, SplitKind, SplitRule};

/// Configuration of a [`DsTree`].
#[derive(Debug, Clone, Copy)]
pub struct DsTreeConfig {
    /// Maximum number of series a leaf may hold before splitting.
    pub leaf_capacity: usize,
    /// Initial number of segments of the root node.
    pub initial_segments: usize,
    /// Maximum number of segments a node may reach through vertical splits.
    pub max_segments: usize,
    /// Simulated storage configuration for the raw series.
    pub storage: StorageConfig,
    /// Number of pairwise-distance samples used to estimate the distance
    /// distribution for δ-ε-approximate search.
    pub histogram_samples: usize,
    /// Seed for the histogram sampling.
    pub seed: u64,
}

impl Default for DsTreeConfig {
    /// Defaults scaled from the paper's setup (leaf size 100K on 25-250 GB
    /// datasets) down to laptop-scale datasets.
    fn default() -> Self {
        Self {
            leaf_capacity: 128,
            initial_segments: 4,
            max_segments: 16,
            storage: StorageConfig::on_disk(),
            histogram_samples: 20_000,
            seed: 0xD57EE,
        }
    }
}

/// Per-segment synopsis: the range of segment means and standard deviations
/// over every series stored in the subtree.
#[derive(Debug, Clone, Copy)]
struct Synopsis {
    min_mean: f32,
    max_mean: f32,
    min_std: f32,
    max_std: f32,
}

impl Synopsis {
    fn empty() -> Self {
        Self {
            min_mean: f32::INFINITY,
            max_mean: f32::NEG_INFINITY,
            min_std: f32::INFINITY,
            max_std: f32::NEG_INFINITY,
        }
    }

    fn absorb(&mut self, mean: f32, std: f32) {
        self.min_mean = self.min_mean.min(mean);
        self.max_mean = self.max_mean.max(mean);
        self.min_std = self.min_std.min(std);
        self.max_std = self.max_std.max(std);
    }
}

#[derive(Debug)]
struct Node {
    segments: Vec<Segment>,
    synopsis: Vec<Synopsis>,
    children: Vec<usize>,
    rule: Option<SplitRule>,
    /// Series ids (dataset positions) stored here while building.
    members: Vec<usize>,
    /// After materialization: the contiguous range of this leaf in the
    /// leaf-ordered series store.
    store_start: usize,
    store_len: usize,
    size: usize,
}

impl Node {
    fn new_leaf(segments: Vec<Segment>) -> Self {
        let synopsis = vec![Synopsis::empty(); segments.len()];
        Self {
            segments,
            synopsis,
            children: Vec::new(),
            rule: None,
            members: Vec::new(),
            store_start: 0,
            store_len: 0,
            size: 0,
        }
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The DSTree index.
pub struct DsTree {
    config: DsTreeConfig,
    series_len: usize,
    nodes: Vec<Node>,
    /// Leaf-ordered raw series (the simulated on-disk layout).
    store: SeriesStore,
    /// Maps positions in the store back to dataset positions.
    store_to_dataset: Vec<usize>,
    /// Inverse of `store_to_dataset`, maintained only once the tree has
    /// grown (see [`DsTree::activate_growth`]); empty while pristine.
    dataset_to_store: Vec<usize>,
    histogram: DistanceHistogram,
    num_series: usize,
    /// Content fingerprint of the dataset the tree was built over, captured
    /// at build/load time so snapshotting never has to re-read the
    /// (possibly file-backed) store.
    data_fingerprint: u64,
    /// Whether series were ingested after the build/load. A grown tree's
    /// leaf extents and store order are interleaved by arrival, so leaf
    /// visits switch to member-row gathering and [`PersistentIndex::save`]
    /// compacts back to the canonical leaf-order layout.
    grown: bool,
}

/// Where [`DsTree::split_leaf`] re-reads the series of an overflowing leaf:
/// the build-time dataset, or (during streaming ingest) the tree's own
/// series store.
enum FetchSource<'a> {
    /// The collection being built (members are dataset positions).
    Dataset(&'a Dataset),
    /// The tree's own store, via `dataset_to_store` (ingest path).
    Store,
}

impl DsTree {
    /// Builds a DSTree over `dataset`.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty or the configuration is
    /// invalid.
    pub fn build(dataset: &Dataset, config: DsTreeConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(Error::EmptyDataset);
        }
        if config.leaf_capacity == 0 {
            return Err(Error::InvalidParameter("leaf capacity must be positive".into()));
        }
        let series_len = dataset.series_len();
        let initial = config.initial_segments.clamp(1, series_len);
        let mut tree = Self {
            config,
            series_len,
            nodes: vec![Node::new_leaf(uniform_segments(series_len, initial))],
            store: SeriesStore::new(series_len, config.storage)?,
            store_to_dataset: Vec::with_capacity(dataset.len()),
            histogram: DistanceHistogram::from_dataset(
                dataset,
                config.histogram_samples,
                256,
                config.seed,
            ),
            num_series: dataset.len(),
            data_fingerprint: fingerprint_dataset(dataset),
            dataset_to_store: Vec::new(),
            grown: false,
        };
        for id in 0..dataset.len() {
            tree.insert(dataset, id);
        }
        tree.materialize(dataset)?;
        Ok(tree)
    }

    /// Inserts one series (by dataset position) into the tree.
    fn insert(&mut self, dataset: &Dataset, id: usize) {
        self.insert_series(id, dataset.series(id), &FetchSource::Dataset(dataset));
    }

    /// Reads the raw series of dataset position `id` into `out`.
    fn fetch_series(&self, id: usize, src: &FetchSource<'_>, out: &mut Vec<f32>) {
        match src {
            FetchSource::Dataset(dataset) => {
                out.clear();
                out.extend_from_slice(dataset.series(id));
            }
            FetchSource::Store => self.store.read_uncharged(self.dataset_to_store[id], out),
        }
    }

    /// Routes one series (its dataset position and raw values) to its leaf,
    /// updating synopses along the descent and splitting on overflow — the
    /// single insertion path shared by [`DsTree::build`] and streaming
    /// ingest, which is what makes the two produce identical trees for the
    /// same insert sequence.
    fn insert_series(&mut self, id: usize, series: &[f32], src: &FetchSource<'_>) {
        // Descend to the leaf, updating synopses along the way.
        let mut node_id = 0usize;
        loop {
            self.absorb(node_id, series);
            if self.nodes[node_id].is_leaf() {
                break;
            }
            let rule = self.nodes[node_id].rule.expect("internal node has a rule");
            let left = rule.goes_left(series, &self.nodes[node_id].segments);
            let children = &self.nodes[node_id].children;
            node_id = if left { children[0] } else { children[1] };
        }
        self.nodes[node_id].members.push(id);
        if self.nodes[node_id].members.len() > self.config.leaf_capacity {
            self.split_leaf(node_id, src);
        }
    }

    fn absorb(&mut self, node_id: usize, series: &[f32]) {
        let node = &mut self.nodes[node_id];
        node.size += 1;
        for (seg, syn) in node.segments.clone().iter().zip(node.synopsis.iter_mut()) {
            let st = segment_stats(series, *seg);
            syn.absorb(st.mean, st.std);
        }
    }

    /// Splits an overflowing leaf using the best-scoring candidate
    /// (horizontal or vertical).
    fn split_leaf(&mut self, node_id: usize, src: &FetchSource<'_>) {
        let members = self.nodes[node_id].members.clone();
        let owned: Vec<Vec<f32>> = members
            .iter()
            .map(|&id| {
                let mut buf = Vec::new();
                self.fetch_series(id, src, &mut buf);
                buf
            })
            .collect();
        let series: Vec<&[f32]> = owned.iter().map(|v| v.as_slice()).collect();
        let candidates = enumerate_candidates(
            &series,
            &self.nodes[node_id].segments,
            self.config.max_segments,
        );
        let Some(best) = candidates
            .into_iter()
            .max_by(|a, b| a.score.total_cmp(&b.score))
        else {
            // All series are identical under every statistic; keep the
            // oversized leaf (splitting cannot help).
            return;
        };

        let child_segments = best.segments.clone();
        let mut left = Node::new_leaf(child_segments.clone());
        let mut right = Node::new_leaf(child_segments.clone());
        for (&id, s) in members.iter().zip(series.iter()) {
            let target = if best.rule.goes_left(s, &child_segments) {
                &mut left
            } else {
                &mut right
            };
            target.members.push(id);
            target.size += 1;
            for (seg, syn) in child_segments.iter().zip(target.synopsis.iter_mut()) {
                let st = segment_stats(s, *seg);
                syn.absorb(st.mean, st.std);
            }
        }
        // Degenerate partitions can happen when the threshold equals the
        // extreme value; fall back to a balanced split on the same ordering.
        if left.members.is_empty() || right.members.is_empty() {
            left.members.clear();
            right.members.clear();
            left.synopsis = vec![Synopsis::empty(); child_segments.len()];
            right.synopsis = vec![Synopsis::empty(); child_segments.len()];
            left.size = 0;
            right.size = 0;
            for (i, (&id, s)) in members.iter().zip(series.iter()).enumerate() {
                let target = if i % 2 == 0 { &mut left } else { &mut right };
                target.members.push(id);
                target.size += 1;
                for (seg, syn) in child_segments.iter().zip(target.synopsis.iter_mut()) {
                    let st = segment_stats(s, *seg);
                    syn.absorb(st.mean, st.std);
                }
            }
        }

        let left_id = self.nodes.len();
        self.nodes.push(left);
        let right_id = self.nodes.len();
        self.nodes.push(right);
        let parent = &mut self.nodes[node_id];
        parent.members.clear();
        parent.children = vec![left_id, right_id];
        parent.rule = Some(best.rule);
        parent.segments = child_segments;
        // The parent synopsis must be recomputed for the refined
        // segmentation: take the union of the children's synopses.
        let mut synopsis = vec![Synopsis::empty(); self.nodes[node_id].segments.len()];
        for &child in &[left_id, right_id] {
            for (i, syn) in self.nodes[child].synopsis.iter().enumerate() {
                synopsis[i].min_mean = synopsis[i].min_mean.min(syn.min_mean);
                synopsis[i].max_mean = synopsis[i].max_mean.max(syn.max_mean);
                synopsis[i].min_std = synopsis[i].min_std.min(syn.min_std);
                synopsis[i].max_std = synopsis[i].max_std.max(syn.max_std);
            }
        }
        self.nodes[node_id].synopsis = synopsis;
    }

    /// Writes leaf contents contiguously into the simulated store (the
    /// on-disk layout of the original implementation, where each leaf owns a
    /// contiguous region).
    fn materialize(&mut self, dataset: &Dataset) -> Result<()> {
        let leaf_ids: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_leaf())
            .collect();
        for leaf_id in leaf_ids {
            let members = self.nodes[leaf_id].members.clone();
            let start = self.store.len();
            for &id in &members {
                self.store.append(dataset.series(id))?;
                self.store_to_dataset.push(id);
            }
            let node = &mut self.nodes[leaf_id];
            node.store_start = start;
            node.store_len = members.len();
        }
        self.store.reset_io();
        Ok(())
    }

    /// Switches the tree into growth mode: repopulates leaf membership from
    /// the leaf extents (a loaded tree carries none — a freshly built one
    /// still does) and builds the store-row inverse mapping. Idempotent.
    fn activate_growth(&mut self) {
        if self.grown {
            return;
        }
        for i in 0..self.nodes.len() {
            let (start, len) = (self.nodes[i].store_start, self.nodes[i].store_len);
            if self.nodes[i].is_leaf() && self.nodes[i].members.len() != len {
                self.nodes[i].members = self.store_to_dataset[start..start + len].to_vec();
            }
        }
        let mut inverse = vec![usize::MAX; self.store_to_dataset.len()];
        for (row, &id) in self.store_to_dataset.iter().enumerate() {
            inverse[id] = row;
        }
        self.dataset_to_store = inverse;
        self.grown = true;
    }

    /// Number of series in a leaf, valid in both pristine and grown trees
    /// (a grown leaf's extent is stale; its membership is authoritative).
    fn leaf_count(&self, node: usize) -> usize {
        if self.grown {
            self.nodes[node].members.len()
        } else {
            self.nodes[node].store_len
        }
    }

    /// The store record ranges holding a leaf's series: the contiguous
    /// extent of a pristine tree, or the maximal contiguous runs of a grown
    /// leaf's member rows (the same run structure `visit_leaf` walks). Lets
    /// the batch scheduler declare a working set without reading anything.
    fn leaf_store_ranges(&self, node: usize, out: &mut Vec<(usize, usize)>) {
        let n = &self.nodes[node];
        if !self.grown {
            if n.store_len > 0 {
                out.push((n.store_start, n.store_len));
            }
            return;
        }
        let mut rows: Vec<usize> = n.members.iter().map(|&id| self.dataset_to_store[id]).collect();
        rows.sort_unstable();
        let mut i = 0;
        while i < rows.len() {
            let mut j = i + 1;
            while j < rows.len() && rows[j] == rows[j - 1] + 1 {
                j += 1;
            }
            out.push((rows[i], j - i));
            i = j;
        }
    }

    /// The content fingerprint of the collection as currently held: the
    /// build/load-time cache while pristine, or a dataset-order scan of the
    /// (permuted, grown) store once series were ingested.
    fn current_data_fingerprint(&self) -> u64 {
        if !self.grown {
            return self.data_fingerprint;
        }
        let mut f = SeriesFingerprinter::new(self.series_len, self.num_series);
        let mut buf = Vec::new();
        for &row in &self.dataset_to_store {
            self.store.read_uncharged(row, &mut buf);
            f.push_series(&buf);
        }
        f.finish()
    }

    /// Number of leaves in the tree.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Average leaf fill factor (stored series / leaf capacity).
    pub fn avg_leaf_fill(&self) -> f64 {
        let leaves: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_leaf())
            .collect();
        if leaves.is_empty() {
            return 0.0;
        }
        let total: usize = leaves.iter().map(|&i| self.leaf_count(i)).sum();
        total as f64 / (leaves.len() * self.config.leaf_capacity) as f64
    }

    /// The simulated storage layer holding the raw series.
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// The distance histogram used for δ-ε-approximate search.
    pub fn histogram(&self) -> &DistanceHistogram {
        &self.histogram
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> &DsTreeConfig {
        &self.config
    }

    /// Lower bound between `query` and node `node_id` using the EAPCA
    /// synopsis: for every segment, the query's segment mean/std are clamped
    /// into the node's ranges, and the per-segment contribution is
    /// `len · ((μ_q - μ̂)² + (σ_q - σ̂)²)`.
    fn node_min_dist(&self, query: &[f32], node_id: usize) -> f32 {
        let node = &self.nodes[node_id];
        if node.size == 0 {
            return f32::INFINITY;
        }
        let mut acc = 0.0f32;
        for (seg, syn) in node.segments.iter().zip(node.synopsis.iter()) {
            let st = segment_stats(query, *seg);
            let mean_gap = if st.mean < syn.min_mean {
                syn.min_mean - st.mean
            } else if st.mean > syn.max_mean {
                st.mean - syn.max_mean
            } else {
                0.0
            };
            let std_gap = if st.std < syn.min_std {
                syn.min_std - st.std
            } else if st.std > syn.max_std {
                st.std - syn.max_std
            } else {
                0.0
            };
            acc += seg.len() as f32 * (mean_gap * mean_gap + std_gap * std_gap);
        }
        acc.sqrt()
    }
}

/// Everything that shapes a DSTree build, hashed together with the dataset
/// content (see [`PersistentIndex`]). The storage configuration is
/// deliberately **not** hashed — page size, pool capacity and backing shape
/// only I/O economics, never the tree or its answers, so a snapshot may be
/// served with any pool (`--pool-pages`) and either backing.
fn snapshot_fingerprint(config: &DsTreeConfig, data_fingerprint: u64) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(DsTree::KIND);
    f.push_usize(config.leaf_capacity);
    f.push_usize(config.initial_segments);
    f.push_usize(config.max_segments);
    f.push_usize(config.histogram_samples);
    f.push_u64(config.seed);
    f.push_u64(data_fingerprint);
    f.finish()
}

impl PersistentIndex for DsTree {
    type Config = DsTreeConfig;
    const KIND: &'static str = "dstree";

    /// Snapshots the tree (per-node segmentation, EAPCA synopsis, split
    /// rule, leaf extents), the leaf-order-to-dataset mapping and the δ-ε
    /// histogram; the raw series are re-attached from the dataset at load
    /// time (resident or file-backed). A pristine tree saves its cached
    /// dataset fingerprint and extents verbatim; a *grown* tree (see
    /// [`AnnIndex::insert_batch`]) recomputes the fingerprint from a store
    /// scan and **compacts** its arrival-interleaved layout to the
    /// canonical leaf order a fresh build would have materialized — node
    /// creation order is identical for the same insert sequence, so the
    /// snapshot bytes are identical too.
    fn save(&self, path: &Path) -> hydra_persist::Result<()> {
        let mut w = SnapshotWriter::new(
            Self::KIND,
            snapshot_fingerprint(&self.config, self.current_data_fingerprint()),
        );

        let (extents, mapping): (Vec<(usize, usize)>, Vec<usize>) = if self.grown {
            let mut extents = vec![(0usize, 0usize); self.nodes.len()];
            let mut mapping = Vec::with_capacity(self.num_series);
            for (i, node) in self.nodes.iter().enumerate() {
                if node.is_leaf() {
                    extents[i] = (mapping.len(), node.members.len());
                    mapping.extend_from_slice(&node.members);
                }
            }
            (extents, mapping)
        } else {
            (
                self.nodes.iter().map(|n| (n.store_start, n.store_len)).collect(),
                self.store_to_dataset.clone(),
            )
        };

        let mut meta = Section::new();
        meta.put_usize(self.series_len);
        meta.put_usize(self.num_series);
        meta.put_usize(self.nodes.len());
        w.push(meta);

        let mut nodes = Section::new();
        for (node, &(store_start, store_len)) in self.nodes.iter().zip(extents.iter()) {
            nodes.put_usize(node.segments.len());
            for seg in &node.segments {
                nodes.put_usize(seg.start);
                nodes.put_usize(seg.end);
            }
            for syn in &node.synopsis {
                nodes.put_f32(syn.min_mean);
                nodes.put_f32(syn.max_mean);
                nodes.put_f32(syn.min_std);
                nodes.put_f32(syn.max_std);
            }
            nodes.put_usizes(&node.children);
            match node.rule {
                None => nodes.put_bool(false),
                Some(rule) => {
                    nodes.put_bool(true);
                    nodes.put_usize(rule.segment);
                    nodes.put_u8(match rule.kind {
                        SplitKind::Mean => 0,
                        SplitKind::Std => 1,
                    });
                    nodes.put_f32(rule.threshold);
                }
            }
            nodes.put_usize(store_start);
            nodes.put_usize(store_len);
            nodes.put_usize(node.size);
        }
        w.push(nodes);

        let mut mapping_sec = Section::new();
        mapping_sec.put_usizes(&mapping);
        w.push(mapping_sec);

        let mut hist = Section::new();
        codec::put_histogram(&mut hist, &self.histogram);
        w.push(hist);

        w.write_to(path)
    }

    fn load(path: &Path, dataset: &Dataset, config: &DsTreeConfig) -> hydra_persist::Result<Self> {
        Self::load_backed(path, dataset, config, StoreBacking::Resident)
    }

    fn load_backed(
        path: &Path,
        dataset: &Dataset,
        config: &DsTreeConfig,
        backing: StoreBacking<'_>,
    ) -> hydra_persist::Result<Self> {
        Self::load_from(path, DataSource::InMemory(dataset), config, backing)
    }

    /// Loads without ever materializing a streamed dataset: shape and
    /// fingerprint come from the source's header facts, and the raw series
    /// re-attach straight from the validated snapshot file.
    fn load_from(
        path: &Path,
        source: DataSource<'_>,
        config: &DsTreeConfig,
        backing: StoreBacking<'_>,
    ) -> hydra_persist::Result<Self> {
        let data_fingerprint = source.fingerprint();
        let mut r = SnapshotReader::open(path)?;
        r.expect_kind(Self::KIND)?;
        r.expect_fingerprint(snapshot_fingerprint(config, data_fingerprint))?;

        let mut meta = r.next_section()?;
        let series_len = meta.get_usize()?;
        let num_series = meta.get_usize()?;
        let node_count = meta.get_usize()?;
        if series_len != source.series_len() || num_series != source.len() {
            return Err(PersistError::Corrupt(
                "snapshot metadata disagrees with the dataset".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let seg_count = sec.get_usize()?;
            let mut segments = Vec::with_capacity(seg_count);
            for _ in 0..seg_count {
                let start = sec.get_usize()?;
                let end = sec.get_usize()?;
                if start >= end || end > series_len {
                    return Err(PersistError::Corrupt(format!(
                        "segment [{start}, {end}) outside the series domain"
                    )));
                }
                segments.push(Segment { start, end });
            }
            let mut synopsis = Vec::with_capacity(seg_count);
            for _ in 0..seg_count {
                synopsis.push(Synopsis {
                    min_mean: sec.get_f32()?,
                    max_mean: sec.get_f32()?,
                    min_std: sec.get_f32()?,
                    max_std: sec.get_f32()?,
                });
            }
            let children = sec.get_usizes()?;
            let rule = if sec.get_bool()? {
                let segment = sec.get_usize()?;
                let kind = match sec.get_u8()? {
                    0 => SplitKind::Mean,
                    1 => SplitKind::Std,
                    tag => {
                        return Err(PersistError::Corrupt(format!(
                            "invalid split-kind tag {tag}"
                        )))
                    }
                };
                if segment >= seg_count {
                    return Err(PersistError::Corrupt(
                        "split rule references a missing segment".into(),
                    ));
                }
                Some(SplitRule {
                    segment,
                    kind,
                    threshold: sec.get_f32()?,
                })
            } else {
                None
            };
            let store_start = sec.get_usize()?;
            let store_len = sec.get_usize()?;
            if store_start
                .checked_add(store_len)
                .map_or(true, |end| end > num_series)
            {
                return Err(PersistError::Corrupt(
                    "leaf extent exceeds the series store".into(),
                ));
            }
            let size = sec.get_usize()?;
            nodes.push(Node {
                segments,
                synopsis,
                children,
                rule,
                members: Vec::new(),
                store_start,
                store_len,
                size,
            });
        }
        if nodes
            .iter()
            .any(|n| n.children.iter().any(|&c| c == 0 || c >= node_count))
        {
            return Err(PersistError::Corrupt("node child id out of range".into()));
        }

        let mut sec = r.next_section()?;
        let store_to_dataset = sec.get_usizes()?;
        if store_to_dataset.len() != num_series {
            return Err(PersistError::Corrupt(
                "leaf-order mapping does not cover the dataset".into(),
            ));
        }

        let mut sec = r.next_section()?;
        let histogram = codec::get_histogram(&mut sec)?;

        let store = hydra_persist::backing::attach_permuted_store_from(
            path,
            source,
            &store_to_dataset,
            config.storage,
            backing,
        )?;

        Ok(Self {
            config: *config,
            series_len,
            nodes,
            store,
            store_to_dataset,
            dataset_to_store: Vec::new(),
            histogram,
            num_series,
            data_fingerprint,
            grown: false,
        })
    }
}

impl HierarchicalIndex for DsTree {
    fn roots(&self) -> Vec<usize> {
        vec![0]
    }

    fn is_leaf(&self, node: usize) -> bool {
        self.nodes[node].is_leaf()
    }

    fn children(&self, node: usize) -> Vec<usize> {
        self.nodes[node].children.clone()
    }

    fn min_dist(&self, query: &[f32], node: usize) -> f32 {
        self.node_min_dist(query, node)
    }

    fn visit_leaf(
        &self,
        node: usize,
        stats: &mut QueryStats,
        visit: &mut dyn FnMut(usize, &[f32]),
    ) {
        let n = &self.nodes[node];
        if !self.grown {
            if n.store_len == 0 {
                return;
            }
            self.store
                .read_range(n.store_start, n.store_len, stats, &mut |pos, series| {
                    visit(self.store_to_dataset[pos], series);
                });
            return;
        }
        // Grown tree: the leaf's series live at its members' store rows —
        // the original (ascending) leaf block plus appended arrivals. The
        // rows are gathered and walked as maximal contiguous runs so
        // sequential leaf I/O stays sequential where the layout permits.
        let mut rows: Vec<usize> = n.members.iter().map(|&id| self.dataset_to_store[id]).collect();
        rows.sort_unstable();
        let mut i = 0;
        while i < rows.len() {
            let mut j = i + 1;
            while j < rows.len() && rows[j] == rows[j - 1] + 1 {
                j += 1;
            }
            self.store
                .read_range(rows[i], j - i, stats, &mut |pos, series| {
                    visit(self.store_to_dataset[pos], series);
                });
            i = j;
        }
    }

    fn leaf_size(&self, node: usize) -> usize {
        self.leaf_count(node)
    }

    /// Mirrors `visit_leaf`'s run structure through the store's
    /// `scan_refine`, so on a coded store the leaf scan prunes on
    /// compressed pages (and only survivors read exact f32), while on a
    /// raw store the I/O charges are exactly `visit_leaf`'s.
    fn refine_leaf(
        &self,
        node: usize,
        query: &[f32],
        best_so_far: f32,
        stats: &mut QueryStats,
        accept: &mut dyn FnMut(usize, f32) -> f32,
    ) -> u64 {
        let n = &self.nodes[node];
        let mut bound = best_so_far;
        if !self.grown {
            if n.store_len == 0 {
                return 0;
            }
            self.store
                .scan_refine(n.store_start, n.store_len, query, bound, stats, &mut |pos, d| {
                    accept(self.store_to_dataset[pos], d)
                });
            return n.store_len as u64;
        }
        let mut rows: Vec<usize> = n.members.iter().map(|&id| self.dataset_to_store[id]).collect();
        rows.sort_unstable();
        let mut i = 0;
        while i < rows.len() {
            let mut j = i + 1;
            while j < rows.len() && rows[j] == rows[j - 1] + 1 {
                j += 1;
            }
            bound = self
                .store
                .scan_refine(rows[i], j - i, query, bound, stats, &mut |pos, d| {
                    accept(self.store_to_dataset[pos], d)
                });
            i = j;
        }
        rows.len() as u64
    }
}

impl AnnIndex for DsTree {
    fn name(&self) -> &'static str {
        "DSTree"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: true,
            ng_approximate: true,
            epsilon_approximate: true,
            delta_epsilon_approximate: true,
            disk_resident: true,
            streaming_insert: true,
            representation: Representation::Eapca,
        }
    }

    fn num_series(&self) -> usize {
        self.num_series
    }

    fn series_len(&self) -> usize {
        self.series_len
    }

    fn memory_footprint(&self) -> usize {
        // The index structure itself: nodes with segmentation + synopsis.
        // Raw series live on (simulated) disk and are not counted, matching
        // how the paper reports DSTree's small footprint.
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + n.segments.len() * std::mem::size_of::<Segment>()
                    + n.synopsis.len() * std::mem::size_of::<Synopsis>()
            })
            .sum::<usize>()
            + self.store_to_dataset.len() * std::mem::size_of::<usize>()
    }

    fn store_counters(&self) -> Option<hydra_core::StoreCounters> {
        Some(self.store.counters())
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<SearchResult> {
        if query.len() != self.series_len {
            return Err(Error::DimensionMismatch {
                expected: self.series_len,
                found: query.len(),
            });
        }
        let spec = SearchSpec::from_params(params, Some(&self.histogram));
        Ok(knn_search(self, query, &spec))
    }

    /// Batched search with batch-aware storage scheduling: each query's
    /// likeliest first leaf is predicted I/O-free ([`predict_first_leaf`]'s
    /// greedy min-dist descent — the same heuristic best-first search uses
    /// to seed its bound), the union of those leaves' store ranges is
    /// pinned in the buffer pool and prefetched as one ascending page
    /// sweep, and only then do the queries run, each exactly as
    /// [`Self::search`] would. Answers and per-query logical counters are
    /// bit-identical to per-query `search`; what improves is the pool
    /// economics (hits, misses, I/O operations) — the batch's shared hot
    /// leaves stay resident instead of thrashing, and their faults are
    /// charged as one sequential sweep. A resident store has no I/O to
    /// schedule and skips the ceremony.
    fn search_batch(
        &self,
        queries: &[&[f32]],
        params: &SearchParams,
    ) -> Vec<Result<SearchResult>> {
        let pinned = if self.store.is_file_backed() && queries.len() > 1 {
            let mut ranges = Vec::new();
            for query in queries {
                if query.len() != self.series_len {
                    continue;
                }
                if let Some(leaf) = predict_first_leaf(self, query) {
                    self.leaf_store_ranges(leaf, &mut ranges);
                }
            }
            self.store.pin_working_set(&ranges, true)
        } else {
            Vec::new()
        };
        let results = queries.iter().map(|q| self.search(q, params)).collect();
        self.store.release_working_set(&pinned);
        results
    }

    /// Streaming ingest by continuing the build's insert sequence: each new
    /// series is appended to the store (arrival order), routed down the
    /// tree — updating every synopsis on its path — and split on overflow
    /// exactly as [`DsTree::build`] would have done, so the grown tree's
    /// topology, synopses and answers are identical to a fresh build over
    /// the full collection. The δ-ε histogram is re-sampled over the grown
    /// collection after the batch.
    fn insert_batch(&mut self, batch: &[&[f32]]) -> Result<()> {
        for series in batch {
            if series.len() != self.series_len {
                return Err(Error::DimensionMismatch {
                    expected: self.series_len,
                    found: series.len(),
                });
            }
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.activate_growth();
        for series in batch {
            let id = self.num_series;
            let row = self.store.append(series)?;
            self.store_to_dataset.push(id);
            self.dataset_to_store.push(row);
            self.num_series += 1;
            self.insert_series(id, series, &FetchSource::Store);
        }
        let store = &self.store;
        let dataset_to_store = &self.dataset_to_store;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        self.histogram = DistanceHistogram::from_pairwise(
            self.num_series,
            self.config.histogram_samples,
            256,
            self.config.seed,
            |i, j| {
                store.read_uncharged(dataset_to_store[i], &mut a);
                store.read_uncharged(dataset_to_store[j], &mut b);
                hydra_core::euclidean(&a, &b)
            },
        );
        // A fresh build hands out a store with clean I/O counters; ingest
        // restores the same post-build state.
        self.store.reset_io();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_data::{exact_knn, random_walk};

    fn build_small(n: usize, len: usize) -> (Dataset, DsTree) {
        let data = random_walk(n, len, 42);
        let config = DsTreeConfig {
            leaf_capacity: 16,
            initial_segments: 4,
            max_segments: 8,
            storage: StorageConfig::in_memory(),
            histogram_samples: 2_000,
            seed: 1,
        };
        let tree = DsTree::build(&data, config).unwrap();
        (data, tree)
    }

    #[test]
    fn build_rejects_empty_dataset() {
        let empty = Dataset::new(8).unwrap();
        assert!(DsTree::build(&empty, DsTreeConfig::default()).is_err());
        let one = random_walk(1, 8, 0);
        let bad = DsTreeConfig {
            leaf_capacity: 0,
            ..DsTreeConfig::default()
        };
        assert!(DsTree::build(&one, bad).is_err());
    }

    #[test]
    fn tree_partitions_all_series_into_leaves() {
        let (data, tree) = build_small(500, 64);
        let total: usize = (0..tree.nodes.len())
            .filter(|&i| tree.is_leaf(i))
            .map(|i| tree.leaf_size(i))
            .sum();
        assert_eq!(total, data.len());
        assert!(tree.num_leaves() > 1, "500 series must split a 16-capacity leaf");
        assert!(tree.avg_leaf_fill() > 0.0);
        assert_eq!(tree.num_series(), 500);
        assert_eq!(tree.series_len(), 64);
        assert!(tree.memory_footprint() > 0);
        assert_eq!(tree.name(), "DSTree");
        assert!(tree.capabilities().exact);
        assert!(tree.capabilities().disk_resident);
    }

    #[test]
    fn exact_search_matches_brute_force() {
        let (data, tree) = build_small(400, 32);
        for qi in [0usize, 13, 77] {
            let query = data.series(qi);
            let res = tree.search(query, &SearchParams::exact(10)).unwrap();
            let gt = exact_knn(&data, query, 10);
            assert_eq!(res.neighbors.len(), 10);
            for (a, b) in res.neighbors.iter().zip(gt.iter()) {
                assert!(
                    (a.distance - b.distance).abs() < 1e-4,
                    "exact search must match brute force"
                );
            }
        }
    }

    #[test]
    fn epsilon_guarantee_holds() {
        let (data, tree) = build_small(400, 32);
        let queries = random_walk(10, 32, 7);
        for eps in [0.5f32, 1.0, 3.0] {
            for q in queries.iter() {
                let res = tree.search(q, &SearchParams::epsilon(5, eps)).unwrap();
                let gt = exact_knn(&data, q, 5);
                let bound = (1.0 + eps) * gt[4].distance + 1e-4;
                for n in &res.neighbors {
                    assert!(n.distance <= bound, "eps={eps}");
                }
            }
        }
    }

    #[test]
    fn ng_search_visits_bounded_leaves_and_is_fast_but_approximate() {
        let (data, tree) = build_small(800, 32);
        let query = random_walk(1, 32, 99);
        let q = query.series(0);
        let ng = tree.search(q, &SearchParams::ng(5, 2)).unwrap();
        assert!(ng.stats.leaves_visited <= 2);
        let exact = tree.search(q, &SearchParams::exact(5)).unwrap();
        assert!(ng.stats.distance_computations <= exact.stats.distance_computations);
        // ng answers are never better than exact ones.
        assert!(ng.kth_distance() + 1e-6 >= exact.kth_distance());
        let _ = data;
    }

    #[test]
    fn delta_epsilon_search_returns_valid_answers() {
        let (data, tree) = build_small(400, 32);
        let q = data.series(3);
        let res = tree
            .search(q, &SearchParams::delta_epsilon(5, 0.95, 1.0))
            .unwrap();
        assert_eq!(res.neighbors.len(), 5);
        // Distances are sorted and finite.
        for w in res.neighbors.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn search_rejects_wrong_dimension() {
        let (_, tree) = build_small(100, 32);
        assert!(tree.search(&[0.0; 8], &SearchParams::exact(1)).is_err());
    }

    #[test]
    fn snapshot_roundtrip_answers_identically_and_checks_fingerprint() {
        let (data, tree) = build_small(300, 32);
        let path = std::env::temp_dir().join(format!(
            "hydra-dstree-roundtrip-{}.snap",
            std::process::id()
        ));
        tree.save(&path).unwrap();
        let loaded = DsTree::load(&path, &data, tree.config()).unwrap();
        assert_eq!(loaded.num_leaves(), tree.num_leaves());
        for qi in [0usize, 77, 299] {
            let q = data.series(qi);
            for params in [
                SearchParams::exact(5),
                SearchParams::ng(5, 2),
                SearchParams::delta_epsilon(5, 0.9, 1.0),
            ] {
                let a = tree.search(q, &params).unwrap();
                let b = loaded.search(q, &params).unwrap();
                assert_eq!(a.neighbors.len(), b.neighbors.len());
                for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
                    assert_eq!(x.index, y.index);
                    assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                }
                assert_eq!(a.stats, b.stats, "loaded tree must pay identical costs");
            }
        }
        let other = DsTreeConfig {
            seed: tree.config().seed ^ 1,
            ..*tree.config()
        };
        assert!(matches!(
            DsTree::load(&path, &data, &other),
            Err(hydra_persist::PersistError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ingest_matches_fresh_build_and_compacts_snapshots() {
        let data = random_walk(300, 32, 42);
        let config = DsTreeConfig {
            leaf_capacity: 16,
            initial_segments: 4,
            max_segments: 8,
            storage: StorageConfig::in_memory(),
            histogram_samples: 2_000,
            seed: 1,
        };
        let fresh = DsTree::build(&data, config).unwrap();

        let head = Dataset::from_flat(32, data.as_flat()[..180 * 32].to_vec()).unwrap();
        let tail: Vec<&[f32]> = (180..300).map(|i| data.series(i)).collect();

        // Grow a freshly built tree and one round-tripped through a
        // snapshot (whose leaves must be re-hydrated from their extents).
        let built = DsTree::build(&head, config).unwrap();
        let path = std::env::temp_dir().join(format!(
            "hydra-dstree-ingest-{}.snap",
            std::process::id()
        ));
        built.save(&path).unwrap();
        let loaded = DsTree::load(&path, &head, &config).unwrap();
        std::fs::remove_file(&path).ok();

        for mut grown in [built, loaded] {
            grown.insert_batch(&tail[..43]).unwrap();
            grown.insert_batch(&tail[43..]).unwrap();
            assert_eq!(grown.num_series(), fresh.num_series());
            assert_eq!(grown.nodes.len(), fresh.nodes.len());
            for qi in [0usize, 50, 200, 299] {
                let q = data.series(qi);
                for params in [
                    SearchParams::exact(5),
                    SearchParams::ng(5, 2),
                    SearchParams::delta_epsilon(5, 0.9, 1.0),
                ] {
                    let a = fresh.search(q, &params).unwrap();
                    let b = grown.search(q, &params).unwrap();
                    assert_eq!(a.neighbors.len(), b.neighbors.len());
                    for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
                        assert_eq!(x.index, y.index);
                        assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                    }
                    // CPU-side costs match; only page-level I/O economics
                    // may differ (the grown store is arrival-interleaved).
                    assert_eq!(a.stats.distance_computations, b.stats.distance_computations);
                    assert_eq!(a.stats.leaves_visited, b.stats.leaves_visited);
                    assert_eq!(a.stats.series_scanned, b.stats.series_scanned);
                }
            }

            // Saving a grown tree compacts it back to the canonical
            // leaf-order layout: bytes identical to the fresh build's.
            let dir = std::env::temp_dir();
            let fresh_path =
                dir.join(format!("hydra-dstree-fresh-{}.snap", std::process::id()));
            let grown_path =
                dir.join(format!("hydra-dstree-grown-{}.snap", std::process::id()));
            fresh.save(&fresh_path).unwrap();
            grown.save(&grown_path).unwrap();
            assert_eq!(
                std::fs::read(&fresh_path).unwrap(),
                std::fs::read(&grown_path).unwrap(),
                "a grown DSTree must snapshot byte-identically to a fresh build"
            );
            std::fs::remove_file(&fresh_path).ok();
            std::fs::remove_file(&grown_path).ok();

            // Dimension mismatches reject the whole batch without growing.
            let before = grown.num_series();
            assert!(grown.insert_batch(&[&[0.0f32; 3]]).is_err());
            assert_eq!(grown.num_series(), before);
        }
    }

    #[test]
    fn exact_search_accesses_less_data_than_full_scan_on_clustered_data() {
        // Random walks are highly correlated, which is where DSTree pruning
        // shines; verify pruning actually happens.
        let (data, tree) = build_small(1000, 64);
        let q = data.series(11);
        let res = tree.search(q, &SearchParams::exact(1)).unwrap();
        assert!(
            (res.stats.series_scanned as usize) < data.len(),
            "exact search should prune part of the dataset"
        );
        assert_eq!(res.neighbors[0].index, 11);
    }
}
