//! Fuzz and corruption-matrix tests of the hydra-serve wire codec
//! (mirroring the snapshot-layer style of `tests/persist_roundtrip.rs` /
//! the container tests): arbitrary bytes, truncated frames, flipped
//! magic/version/length fields and oversized declared lengths must each
//! yield the exact typed `ProtocolError` — never a panic, a hang, or a
//! partially decoded answer.
//!
//! The second half aims the same corruptions at the **router path**: a
//! live `Router` whose worker answers queries with malformed or lying
//! frames must degrade each poisoned query into a typed `Unavailable`
//! error (never a panic, a hang, or a garbage answer passed through) and
//! recover fully once the worker behaves again.

use std::io::{Cursor, Read};

use proptest::prelude::*;

use hydra::{SearchMode, SearchParams};
use hydra_serve::protocol::{
    read_frame, read_request, read_response, ProtocolError, Request, Response, ResponseBody,
    MAX_FRAME_LEN, PROTOCOL_VERSION, REQUEST_MAGIC, RESPONSE_MAGIC,
};

/// Builds a deterministic but parameter-diverse query request.
fn sample_request(k: usize, nprobe: usize, mode_pick: usize, qlen: usize, id: usize) -> Request {
    let mode = match mode_pick % 4 {
        0 => SearchMode::Exact,
        1 => SearchMode::Ng { nprobe },
        2 => SearchMode::Epsilon {
            epsilon: nprobe as f32 * 0.25,
        },
        _ => SearchMode::DeltaEpsilon {
            epsilon: nprobe as f32 * 0.25,
            delta: 1.0 / (1.0 + id as f32),
        },
    };
    Request::Query {
        request_id: id as u64 + 1,
        index: format!("idx-{}", id % 7),
        params: SearchParams { k: k.max(1), mode },
        query: (0..qlen).map(|i| (i as f32 - 3.5) * 0.75).collect(),
    }
}

/// A reader that fails the test if more than `limit` bytes are ever read —
/// proving a decoder rejected a hostile header *before* consuming (or
/// waiting for) the payload it declares.
struct ByteBudget {
    inner: Cursor<Vec<u8>>,
    limit: usize,
    consumed: usize,
}

impl Read for ByteBudget {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.consumed += n;
        assert!(
            self.consumed <= self.limit,
            "decoder consumed {} bytes; a rejected frame must stop at {}",
            self.consumed,
            self.limit
        );
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed frames of every shape round-trip exactly.
    #[test]
    fn valid_requests_roundtrip(
        k in 1usize..2_000,
        nprobe in 0usize..1_000,
        mode_pick in 0usize..4,
        qlen in 0usize..64,
        id in 0usize..1_000,
    ) {
        let request = sample_request(k, nprobe, mode_pick, qlen, id);
        let mut cur = Cursor::new(request.encode());
        let decoded = read_request(&mut cur).unwrap().unwrap();
        prop_assert_eq!(decoded, request);
        prop_assert!(read_request(&mut cur).unwrap().is_none());
    }

    /// Arbitrary byte soup never panics or hangs either decoder: every
    /// outcome is a clean end, a decoded value, or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(
        len in 0usize..200,
        seed in 0usize..1_000_000,
    ) {
        let mut state = seed as u64 ^ 0x9E37_79B9_7F4A_7C15;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        // Both directions, frame layer and payload layer: the assertion is
        // simply that these calls return (no panic, no hang) — and when
        // they fail, with a ProtocolError, which is statically guaranteed
        // by the signature.
        let _ = read_request(&mut Cursor::new(bytes.clone()));
        let _ = read_response(&mut Cursor::new(bytes.clone()));
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Every strict prefix of a valid frame is `Truncated` — no prefix can
    /// decode, hang, or yield a partial answer.
    #[test]
    fn truncated_frames_are_typed(
        k in 1usize..100,
        nprobe in 0usize..64,
        mode_pick in 0usize..4,
        qlen in 1usize..16,
        cut_pick in 0usize..10_000,
    ) {
        let bytes = sample_request(k, nprobe, mode_pick, qlen, cut_pick).encode();
        let cut = 1 + cut_pick % (bytes.len() - 1);
        prop_assert!(matches!(
            read_request(&mut Cursor::new(bytes[..cut].to_vec())),
            Err(ProtocolError::Truncated)
        ));
    }

    /// A flipped magic byte is `BadMagic`; a bumped version field is
    /// `VersionMismatch` carrying the exact found/supported pair.
    #[test]
    fn flipped_magic_and_version_are_typed(
        byte_pick in 0usize..4,
        flip in 1usize..256,
        version_bump in 1usize..1_000,
    ) {
        let good = Request::ListIndexes { request_id: 1 }.encode();
        let mut bad_magic = good.clone();
        bad_magic[byte_pick] ^= flip as u8;
        prop_assert!(matches!(
            read_request(&mut Cursor::new(bad_magic)),
            Err(ProtocolError::BadMagic { .. })
        ));
        let mut bad_version = good.clone();
        let version = PROTOCOL_VERSION.wrapping_add(version_bump as u16);
        bad_version[4..6].copy_from_slice(&version.to_le_bytes());
        prop_assert!(matches!(
            read_request(&mut Cursor::new(bad_version)),
            Err(ProtocolError::VersionMismatch { found, supported: PROTOCOL_VERSION })
                if found == version
        ));
    }

    /// An oversized declared length is rejected after the 10 header bytes,
    /// before a single payload byte is consumed, allocated, or awaited —
    /// the no-hang guarantee.
    #[test]
    fn oversized_lengths_fail_before_the_payload(excess in 1usize..1_000_000) {
        let declared = MAX_FRAME_LEN + excess as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&REQUEST_MAGIC);
        bytes.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&declared.to_le_bytes());
        bytes.extend_from_slice(&vec![0u8; 64]); // bait: must never be read
        let mut budget = ByteBudget { inner: Cursor::new(bytes), limit: 10, consumed: 0 };
        prop_assert!(matches!(
            read_frame(&mut budget, REQUEST_MAGIC),
            Err(ProtocolError::FrameTooLarge { declared: d, max: MAX_FRAME_LEN }) if d == declared
        ));
    }

    /// A tampered length field still yields a typed error (never a panic):
    /// shrinking the frame leaves trailing garbage (`Corrupt`) or cuts a
    /// field (`Truncated`); growing it promises bytes that never come
    /// (`Truncated`).
    #[test]
    fn tampered_length_fields_are_typed(
        k in 1usize..100,
        qlen in 1usize..16,
        delta_pick in 0usize..2_000,
    ) {
        let bytes = sample_request(k, 8, 1, qlen, delta_pick).encode();
        let true_len = (bytes.len() - 10) as u32;
        // Any wrong length in [0, true_len + 1000], excluding the true one.
        let mut wrong = (delta_pick as u32 * 7) % (true_len + 1_000);
        if wrong == true_len {
            wrong += 1;
        }
        let mut tampered = bytes.clone();
        tampered[6..10].copy_from_slice(&wrong.to_le_bytes());
        match read_request(&mut Cursor::new(tampered)) {
            Err(
                ProtocolError::Truncated
                | ProtocolError::Corrupt(_)
                | ProtocolError::BadMagic { .. },
            ) => {}
            // A shorter declared length can, rarely, still frame a valid
            // request whose trailing bytes then fail as the next frame's
            // magic — also a typed outcome, verified above. But it must
            // never decode to the same request as the untampered frame
            // with a *different* declared length, panic, or I/O-error.
            Ok(_) => {}
            Err(other) => {
                prop_assert!(false, "unexpected error variant: {other:?}");
            }
        }
    }

    /// Stats frames ride the same frame layer: any text round-trips, every
    /// strict prefix is `Truncated`, and a flipped magic is `BadMagic` —
    /// a scrape can never wedge or panic a connection.
    #[test]
    fn stats_frames_obey_the_frame_layer(
        id in 1usize..1_000,
        text_len in 0usize..300,
        seed in 0usize..1_000_000,
        cut_pick in 0usize..10_000,
    ) {
        let text: String = (0..text_len)
            .map(|i| char::from(b' ' + ((seed + i * 31) % 90) as u8))
            .collect();
        let response = Response {
            request_id: id as u64,
            body: ResponseBody::Stats { text },
        };
        let bytes = response.encode();
        let decoded = read_response(&mut Cursor::new(bytes.clone())).unwrap().unwrap();
        prop_assert_eq!(&decoded, &response);
        let cut = 1 + cut_pick % (bytes.len() - 1);
        prop_assert!(matches!(
            read_response(&mut Cursor::new(bytes[..cut].to_vec())),
            Err(ProtocolError::Truncated)
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 0x40;
        prop_assert!(matches!(
            read_response(&mut Cursor::new(bad)),
            Err(ProtocolError::BadMagic { .. })
        ));
    }

    /// Flipping any single payload byte of a query frame never panics the
    /// decoder: it either still decodes (the flip landed in value bits) or
    /// fails with a typed error.
    #[test]
    fn payload_bitflips_never_panic(
        k in 1usize..100,
        qlen in 1usize..16,
        pos_pick in 0usize..10_000,
        flip in 1usize..256,
    ) {
        let bytes = sample_request(k, 8, pos_pick, qlen, flip).encode();
        let pos = 10 + pos_pick % (bytes.len() - 10);
        let mut tampered = bytes.clone();
        tampered[pos] ^= flip as u8;
        let _ = read_request(&mut Cursor::new(tampered));
    }
}

// ---------------------------------------------------------------------------
// Deterministic corruption matrix (one pinned case per failure class, in
// the style of the persist container tests).
// ---------------------------------------------------------------------------

#[test]
fn corruption_matrix_pins_every_error_class() {
    let good = sample_request(10, 16, 1, 8, 42).encode();

    // Pristine decodes.
    assert!(read_request(&mut Cursor::new(good.clone())).unwrap().is_some());

    // Empty stream: clean end, not an error.
    assert!(read_request(&mut Cursor::new(Vec::new())).unwrap().is_none());

    // Response magic on the request channel (and vice versa): BadMagic.
    let mut crossed = good.clone();
    crossed[..4].copy_from_slice(&RESPONSE_MAGIC);
    assert!(matches!(
        read_request(&mut Cursor::new(crossed)),
        Err(ProtocolError::BadMagic { found, expected })
            if found == RESPONSE_MAGIC && expected == REQUEST_MAGIC
    ));

    // Unknown op / mode / status / error-code tags: Corrupt.
    let mut cases: Vec<Vec<u8>> = Vec::new();
    {
        use hydra::persist::Section;
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(9); // unknown op (4, Stats, is the highest assigned)
        cases.push(s.as_bytes().to_vec());
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(0);
        s.put_str("idx");
        s.put_u64(10);
        s.put_u8(4); // unknown mode tag
        cases.push(s.as_bytes().to_vec());
    }
    for payload in cases {
        assert!(matches!(
            Request::decode(&payload),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    // k = 0 and absurd k: Corrupt (a hostile k must not reach TopK).
    for k in [0u64, u64::MAX] {
        use hydra::persist::Section;
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(0);
        s.put_str("idx");
        s.put_u64(k);
        s.put_u8(0);
        s.put_f32s(&[1.0]);
        assert!(matches!(
            Request::decode(s.as_bytes()),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    // Trailing bytes inside the declared payload: Corrupt.
    let mut padded = Request::Shutdown { request_id: 1 }.encode();
    padded.extend_from_slice(&[0xAB; 3]);
    let len = (padded.len() - 10) as u32;
    padded[6..10].copy_from_slice(&len.to_le_bytes());
    assert!(matches!(
        read_request(&mut Cursor::new(padded)),
        Err(ProtocolError::Corrupt(_))
    ));

    // A response whose neighbor count outruns its payload: typed, bounded.
    {
        use hydra::persist::Section;
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(0);
        s.put_u64(u64::MAX); // declares ~2^64 neighbors
        assert!(matches!(
            Response::decode(s.as_bytes()),
            Err(ProtocolError::Truncated)
        ));
    }

    // Stats frames obey the same matrix. A stats request is op 4 with no
    // payload — trailing bytes are Corrupt, not ignored.
    {
        use hydra::persist::Section;
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(4);
        assert_eq!(
            Request::decode(s.as_bytes()).unwrap(),
            Request::Stats { request_id: 1 }
        );
        s.put_u8(0xAB);
        assert!(matches!(
            Request::decode(s.as_bytes()),
            Err(ProtocolError::Corrupt(_))
        ));
    }
    // A stats response declaring ~2^64 text bytes fails typed before any
    // allocation; one declaring more than it carries is Truncated; a text
    // that is not UTF-8 is Corrupt, never a panic.
    {
        use hydra::persist::Section;
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(5);
        s.put_u64(u64::MAX);
        assert!(matches!(
            Response::decode(s.as_bytes()),
            Err(ProtocolError::Truncated)
        ));
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(5);
        s.put_u64(100); // declares 100 bytes...
        s.put_u8s(b"short"); // ...after an 8-byte count, carries 5
        assert!(matches!(
            Response::decode(s.as_bytes()),
            Err(ProtocolError::Truncated)
        ));
        let mut s = Section::new();
        s.put_u64(1);
        s.put_u8(5);
        s.put_u8s(&[0xFF, 0xFE, 0x41]);
        assert!(matches!(
            Response::decode(s.as_bytes()),
            Err(ProtocolError::Corrupt(_))
        ));
    }

    // Responses round-trip too (shared frame layer, distinct magic).
    let response = Response {
        request_id: 7,
        body: ResponseBody::Answer {
            neighbors: vec![hydra::Neighbor::new(3, 0.5)],
        },
    };
    let mut cur = Cursor::new(response.encode());
    assert_eq!(read_response(&mut cur).unwrap().unwrap(), response);
}

// ---------------------------------------------------------------------------
// Router path: the same corruption classes, delivered by a live worker to a
// live router over real sockets.
// ---------------------------------------------------------------------------

mod router_path {
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use proptest::prelude::*;

    use hydra::{Neighbor, SearchParams};
    use hydra_serve::protocol::{read_request, MAX_FRAME_LEN, PROTOCOL_VERSION};
    use hydra_serve::{
        ErrorCode, IndexInfo, Request, Response, ResponseBody, Router, RouterConfig, ServeClient,
    };

    const SHARD_LEN: u64 = 8;

    /// How the worker answers the **first** query of the run; every later
    /// query gets the honest answer, so the harness can also prove the
    /// router recovers. The closure receives the request id (some lies need
    /// it) and the honest encoded frame, and returns the bytes to put on
    /// the wire — `None` closes the connection instead.
    type Corruption = dyn Fn(u64, Vec<u8>) -> Option<Vec<u8>> + Send + Sync;

    fn honest_answer(request_id: u64) -> Response {
        Response {
            request_id,
            body: ResponseBody::Answer {
                neighbors: vec![Neighbor::new(0, 1.0), Neighbor::new(2, 2.0)],
            },
        }
    }

    /// A worker that serves a valid listing, corrupts its first query
    /// response with `corrupt`, and answers honestly forever after. The
    /// listener outlives every dropped connection, so the router's
    /// reconnects land back here.
    fn corrupting_worker(
        corrupt: Arc<Corruption>,
    ) -> (std::net::SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let fired = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => serve(stream, &corrupt, &fired),
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
            })
        };
        (addr, stop, thread)
    }

    fn serve(stream: TcpStream, corrupt: &Arc<Corruption>, fired: &AtomicBool) {
        let Ok(mut write_half) = stream.try_clone() else {
            return;
        };
        let mut reader = std::io::BufReader::new(stream);
        loop {
            let request = match read_request(&mut reader) {
                Ok(Some(request)) => request,
                _ => return,
            };
            let frame = match request {
                Request::ListIndexes { request_id } => Some(
                    Response {
                        request_id,
                        body: ResponseBody::Indexes {
                            indexes: vec![IndexInfo {
                                name: "fuzz-scan".into(),
                                method: "scan".into(),
                                num_series: SHARD_LEN,
                                series_len: 4,
                                exact: true,
                                ng_approximate: false,
                                epsilon_approximate: false,
                                delta_epsilon_approximate: false,
                                disk_resident: false,
                                streaming_insert: false,
                            }],
                        },
                    }
                    .encode(),
                ),
                Request::Query { request_id, .. } => {
                    let honest = honest_answer(request_id).encode();
                    if fired.swap(true, Ordering::SeqCst) {
                        Some(honest)
                    } else {
                        match corrupt(request_id, honest) {
                            Some(bytes) => Some(bytes),
                            None => return,
                        }
                    }
                }
                Request::Reload { request_id } => Some(
                    Response {
                        request_id,
                        body: ResponseBody::Error {
                            code: hydra_serve::ErrorCode::Unavailable,
                            message: "fuzz worker has no reloader".into(),
                        },
                    }
                    .encode(),
                ),
                Request::Stats { request_id } => Some(
                    Response {
                        request_id,
                        body: ResponseBody::Stats {
                            text: String::new(),
                        },
                    }
                    .encode(),
                ),
                Request::Shutdown { request_id } => {
                    let _ = write_half.write_all(
                        &Response {
                            request_id,
                            body: ResponseBody::ShutdownAck,
                        }
                        .encode(),
                    );
                    return;
                }
            };
            if let Some(frame) = frame {
                if write_half
                    .write_all(&frame)
                    .and_then(|()| write_half.flush())
                    .is_err()
                {
                    return;
                }
            }
        }
    }

    /// Boots a one-worker router over the corrupting worker, fires the
    /// poisoned query, and asserts the full degradation contract: a typed
    /// response in bounded time (`strict` additionally pins it to
    /// `Unavailable` — relaxed for corruptions that may still decode to a
    /// valid frame), a live listing afterwards, and eventual recovery to
    /// the honest answer through the reconnection backoff.
    fn router_survives(corrupt: Arc<Corruption>, strict: bool) {
        let (addr, stop, thread) = corrupting_worker(corrupt);
        let config = RouterConfig {
            worker_timeout: Duration::from_millis(300),
            connect_timeout: Duration::from_millis(200),
            boot_timeout: Duration::from_secs(5),
            backoff_initial: Duration::from_millis(5),
            backoff_max: Duration::from_millis(50),
            ..RouterConfig::default()
        };
        let router = Router::spawn(&[addr], "127.0.0.1:0", config).unwrap();
        let mut client = ServeClient::connect(router.local_addr()).unwrap();
        // A wedged router must fail the test, not hang it.
        client
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        let ask = |client: &mut ServeClient, request_id: u64| {
            client
                .call(&Request::Query {
                    request_id,
                    index: "fuzz-scan".into(),
                    params: SearchParams::exact(2),
                    query: vec![0.0; 4],
                })
                .expect("the router must answer every query frame")
                .body
        };

        let poisoned = ask(&mut client, 1);
        match &poisoned {
            ResponseBody::Error {
                code: ErrorCode::Unavailable,
                ..
            } => {}
            ResponseBody::Answer { .. } if !strict => {}
            other => panic!("poisoned query must degrade typed, got {other:?}"),
        }

        // The router is still alive: the cached merged listing answers.
        assert_eq!(client.list_indexes().unwrap().len(), 1);

        // And it recovers to the honest merged answer through its backoff.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut request_id = 2;
        loop {
            match ask(&mut client, request_id) {
                ResponseBody::Answer { neighbors } => {
                    assert_eq!(neighbors.len(), 2);
                    assert_eq!(neighbors[0].index, 0);
                    assert_eq!(neighbors[1].index, 2);
                    break;
                }
                ResponseBody::Error {
                    code: ErrorCode::Unavailable,
                    ..
                } => {
                    assert!(
                        Instant::now() < deadline,
                        "router did not recover from the corruption"
                    );
                    request_id += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                other => panic!("unexpected body during recovery: {other:?}"),
            }
        }

        drop(client);
        router.shutdown();
        router.join();
        stop.store(true, Ordering::SeqCst);
        thread.join().unwrap();
    }

    #[test]
    fn connection_dropped_instead_of_an_answer() {
        router_survives(Arc::new(|_, _| None), true);
    }

    #[test]
    fn truncated_answer_frame() {
        router_survives(Arc::new(|_, bytes: Vec<u8>| Some(bytes[..bytes.len() / 2].to_vec())), true);
    }

    #[test]
    fn answer_with_flipped_magic() {
        router_survives(
            Arc::new(|_, mut bytes: Vec<u8>| {
                bytes[0] ^= 0xFF;
                Some(bytes)
            }),
            true,
        );
    }

    #[test]
    fn answer_from_a_future_protocol_version() {
        router_survives(
            Arc::new(|_, mut bytes: Vec<u8>| {
                bytes[4..6].copy_from_slice(&(PROTOCOL_VERSION + 1).to_le_bytes());
                Some(bytes)
            }),
            true,
        );
    }

    #[test]
    fn answer_declaring_an_oversized_frame() {
        router_survives(
            Arc::new(|_, mut bytes: Vec<u8>| {
                bytes[6..10].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
                Some(bytes)
            }),
            true,
        );
    }

    #[test]
    fn answer_that_is_byte_soup() {
        router_survives(
            Arc::new(|_, _| {
                let mut state = 0xDEAD_BEEFu64;
                Some(
                    (0..40)
                        .map(|_| {
                            state = state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            (state >> 33) as u8
                        })
                        .collect(),
                )
            }),
            true,
        );
    }

    #[test]
    fn answer_echoing_the_wrong_request_id() {
        router_survives(
            Arc::new(|request_id, _| Some(super::Response {
                request_id: request_id + 1,
                body: honest_answer(request_id).body,
            }
            .encode())),
            true,
        );
    }

    #[test]
    fn answer_with_the_wrong_body_kind() {
        router_survives(
            Arc::new(|request_id, _| Some(super::Response {
                request_id,
                body: ResponseBody::ShutdownAck,
            }
            .encode())),
            true,
        );
    }

    #[test]
    fn answer_with_an_out_of_range_series_id() {
        router_survives(
            Arc::new(|request_id, _| Some(super::Response {
                request_id,
                body: ResponseBody::Answer {
                    neighbors: vec![Neighbor::new(SHARD_LEN as usize + 7, 0.5)],
                },
            }
            .encode())),
            true,
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Randomly mutilated worker responses (a cut, plus byte flips at
        /// LCG-chosen positions) never panic or wedge the router. The
        /// response may legitimately still decode — a flip can land in
        /// distance value bits — so the assertion is the relaxed contract:
        /// typed answer or typed error, live listing, full recovery.
        #[test]
        fn random_response_mutilations_never_wedge_the_router(seed in 0usize..1_000_000) {
            let corrupt = move |_, bytes: Vec<u8>| {
                let mut state = seed as u64 ^ 0xA076_1D64_78BD_642F;
                let mut next = || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) as usize
                };
                let mut bytes = bytes;
                let cut = 1 + next() % bytes.len();
                bytes.truncate(cut);
                for _ in 0..(next() % 4) {
                    let pos = next() % bytes.len();
                    bytes[pos] ^= (next() % 255 + 1) as u8;
                }
                Some(bytes)
            };
            router_survives(Arc::new(corrupt), false);
        }
    }
}
