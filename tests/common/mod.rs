//! Shared fixtures for the root integration tests: per-test temp
//! directories, build-once-per-process snapshot zoos, and the pipelined
//! TCP replay helper — so the serving, out-of-core, shard and router tests
//! stop each rebuilding the same snapshot directories from scratch.
//!
//! Each `tests/*.rs` file is its own test binary; `mod common;` compiles
//! this module into each of them, which is why helpers unused by one
//! binary are expected.

#![allow(dead_code)]

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use hydra::core::{euclidean, TopK};
use hydra::prelude::*;
use hydra::{Capabilities, Neighbor, QueryStats, Representation, SearchResult};
use hydra_serve::{Request, ResponseBody, ServeClient};

/// Brute-force linear scan: the reference [`AnnIndex`] whose sharded
/// equivalence is provable on paper (the true top-k of a union is the
/// merge of the true top-k of its parts), so any drift is the harness's.
/// Exact-only, one distance computation per series.
pub struct Scan {
    /// The series it scans.
    pub data: hydra::Dataset,
}

impl AnnIndex for Scan {
    fn name(&self) -> &'static str {
        "scan"
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: true,
            ng_approximate: false,
            epsilon_approximate: false,
            delta_epsilon_approximate: false,
            disk_resident: false,
            streaming_insert: false,
            representation: Representation::Raw,
        }
    }
    fn num_series(&self) -> usize {
        self.data.len()
    }
    fn series_len(&self) -> usize {
        self.data.series_len()
    }
    fn memory_footprint(&self) -> usize {
        self.data.payload_bytes()
    }
    fn search(&self, query: &[f32], params: &SearchParams) -> hydra::Result<SearchResult> {
        if query.len() != self.data.series_len() {
            return Err(hydra::Error::DimensionMismatch {
                expected: self.data.series_len(),
                found: query.len(),
            });
        }
        if !matches!(params.mode, SearchMode::Exact) {
            return Err(hydra::Error::UnsupportedMode("scan is exact-only".into()));
        }
        let mut stats = QueryStats::new();
        stats.distance_computations = self.data.len() as u64;
        Ok(SearchResult::new(
            brute_force_top_k(&self.data, query, params.k),
            stats,
        ))
    }
}

/// The true top-k of `data` under the Euclidean distance, sorted by
/// (distance, id) — the shared kernel of [`Scan`] and the scripted workers
/// of the router fault-injection tests.
pub fn brute_force_top_k(data: &hydra::Dataset, query: &[f32], k: usize) -> Vec<Neighbor> {
    let mut top = TopK::new(k);
    for (i, series) in data.iter().enumerate() {
        top.push(Neighbor::new(i, euclidean(query, series)));
    }
    top.into_sorted()
}

/// A fresh, empty temp directory owned by one test. The name carries the
/// process id (parallel `cargo test` binaries must not collide) and the
/// caller's tag (parallel tests within one binary must not either).
pub fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hydra-integration-{}-{name}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One prepared snapshot directory: the dataset it was built from and
/// where the snapshots live. Shared fixtures are built once per process —
/// do **not** delete `dir` at the end of a test; other tests in the
/// binary may still be using it (it lives under the OS temp directory).
pub struct ZooFixture {
    /// The snapshot directory (dataset snapshot + one `.snap` per method).
    pub dir: PathBuf,
    /// The dataset every snapshot in `dir` was built over.
    pub data: hydra::Dataset,
}

/// The out-of-core test dataset: 1200 × 64 raw series (≈ 300 KiB), ~5× a
/// default 64 KiB page, so a 1-page pool genuinely thrashes.
pub fn ooc_dataset() -> hydra::Dataset {
    let data = hydra::data::random_walk(1_200, 64, 8181);
    assert!(
        data.len() * data.series_len() * 4 > StorageConfig::on_disk().page_bytes,
        "the dataset must not fit one page"
    );
    data
}

/// Saves `data`'s snapshot plus every method of the scenario under
/// `prefix` in `dir`, exactly as `fig* --save-index` lays a directory out:
/// `<prefix>.data.snap`, `<prefix>-dstree.snap`, ... — the 5 disk-capable
/// methods always, plus HNSW/QALSH/FLANN when `in_memory`.
pub fn save_zoo(dir: &Path, prefix: &str, data: &hydra::Dataset, in_memory: bool, seed: u64) {
    let configs = hydra::standard_configs(in_memory, seed);
    hydra::persist::dataset::save_dataset(data, &dir.join(format!("{prefix}.data.snap")))
        .unwrap();
    let snap = |kind: &str| dir.join(format!("{prefix}-{kind}.snap"));
    DsTree::build(data, configs.dstree).unwrap().save(&snap("dstree")).unwrap();
    Isax2Plus::build(data, configs.isax).unwrap().save(&snap("isax2")).unwrap();
    VaPlusFile::build(data, configs.vafile).unwrap().save(&snap("vafile")).unwrap();
    Srs::build(data, configs.srs).unwrap().save(&snap("srs")).unwrap();
    InvertedMultiIndex::build(data, configs.imi).unwrap().save(&snap("imi")).unwrap();
    if in_memory {
        Hnsw::build(data, configs.hnsw).unwrap().save(&snap("hnsw")).unwrap();
        Qalsh::build(data, configs.qalsh).unwrap().save(&snap("qalsh")).unwrap();
        Flann::build(data, configs.flann).unwrap().save(&snap("flann")).unwrap();
    }
}

/// Build-once-per-process registry of shared fixture directories, keyed by
/// fixture name: the first caller builds and snapshots the zoo, later
/// callers (other tests of the same binary) reuse the directory as-is.
static SAVED: Mutex<BTreeMap<&'static str, PathBuf>> = Mutex::new(BTreeMap::new());

fn shared_zoo(
    key: &'static str,
    data: fn() -> hydra::Dataset,
    prefix: &str,
    in_memory: bool,
    seed: u64,
) -> ZooFixture {
    let mut saved = SAVED.lock().unwrap();
    let data_now = data();
    if let Some(dir) = saved.get(key) {
        return ZooFixture {
            dir: dir.clone(),
            data: data_now,
        };
    }
    let dir = temp_dir(key);
    save_zoo(&dir, prefix, &data_now, in_memory, seed);
    saved.insert(key, dir.clone());
    ZooFixture {
        dir,
        data: data_now,
    }
}

/// The in-memory serving zoo (PR 4's fixture): 400 × 32 random walks,
/// `hydra::standard_configs(true, 9)`, all 8 methods, prefix `zoo`.
pub fn in_memory_zoo() -> ZooFixture {
    shared_zoo("zoo-inmemory", || hydra::data::random_walk(400, 32, 2024), "zoo", true, 9)
}

/// The on-disk out-of-core zoo (PR 5's fixture): [`ooc_dataset`],
/// `hydra::standard_configs(false, 5)`, the 5 disk-capable methods,
/// prefix `walk`.
pub fn on_disk_zoo() -> ZooFixture {
    shared_zoo("zoo-ondisk", ooc_dataset, "walk", false, 5)
}

/// Replays `workload` against one served index through `connections`
/// concurrent TCP connections, returning the answers in workload order.
/// Queries are pipelined per connection (send all, then collect by request
/// id), so server-side micro-batchers genuinely see bursts.
pub fn replay(
    addr: SocketAddr,
    index_name: &str,
    params: &SearchParams,
    workload: &hydra::data::QueryWorkload,
    connections: usize,
) -> Vec<Vec<Neighbor>> {
    let queries: Vec<&[f32]> = workload.iter().collect();
    let n = queries.len();
    let chunk = n.div_ceil(connections).max(1);
    let mut merged: Vec<Option<Vec<Neighbor>>> = vec![None; n];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, shard) in queries.chunks(chunk).enumerate() {
            let handle = scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for (i, query) in shard.iter().enumerate() {
                    client
                        .send(&Request::Query {
                            request_id: (i + 1) as u64,
                            index: index_name.to_string(),
                            params: *params,
                            query: query.to_vec(),
                        })
                        .expect("send");
                }
                let mut answers: Vec<Option<Vec<Neighbor>>> = vec![None; shard.len()];
                for _ in 0..shard.len() {
                    let response = client.recv().expect("recv");
                    let slot = (response.request_id - 1) as usize;
                    match response.body {
                        ResponseBody::Answer { neighbors } => {
                            assert!(answers[slot].is_none(), "duplicate response id");
                            answers[slot] = Some(neighbors);
                        }
                        other => panic!("query {} failed: {other:?}", response.request_id),
                    }
                }
                (c, answers)
            });
            handles.push(handle);
        }
        for handle in handles {
            let (c, answers) = handle.join().expect("replay connection panicked");
            for (i, answer) in answers.into_iter().enumerate() {
                merged[c * chunk + i] = Some(answer.expect("unanswered query"));
            }
        }
    });
    merged.into_iter().map(|a| a.unwrap()).collect()
}
