//! Boot-memory regression: a file-backed (`--out-of-core`) boot must
//! never materialize the dataset. The snapshot fingerprint is validated
//! by streaming bounded chunks and the indexes re-attach their stores
//! straight from the validated file, so the boot's peak heap stays
//! O(pool + index structure) — a small fraction of the raw payload.
//!
//! The proof is a real meter, not a code review: this binary installs
//! [`hydra_obs::TrackingAllocator`] as its global allocator (exactly as
//! `hydra-serve` does) and pins the high-water mark of both boot paths.
//! A resident boot must allocate at least the payload (the meter works);
//! a streamed boot must stay under half of it (no Dataset-sized
//! allocation anywhere in the chain). One test only — the allocator's
//! counters are process-global, and a sibling test's allocations would
//! pollute the peak.

mod common;

use hydra::prelude::*;
use hydra_serve::{boot_from_dir, boot_from_dir_with, BootOptions};

#[global_allocator]
static ALLOC: hydra_obs::TrackingAllocator = hydra_obs::TrackingAllocator;

#[test]
fn streamed_boot_peak_heap_stays_below_the_dataset_payload() {
    let dir = common::temp_dir("lazy-boot");
    let seed = 5;
    // 2000 × 512 f32 = 4 MiB of raw payload. Long series, few of them, on
    // purpose: every O(collection) structure a boot legitimately holds —
    // VA approximations, store mappings, tree nodes, their snapshot
    // sections — scales with the series *count*, while the raw payload
    // scales with count × length. Growing the length is what makes the
    // payload/2 bar discriminate "materialized the dataset" from
    // "loaded a Θ(n) index".
    let data = hydra::data::random_walk(2_000, 512, 777);
    let payload = data.len() * data.series_len() * 4;
    hydra::persist::dataset::save_dataset(&data, &dir.join("walk.data.snap")).unwrap();
    let configs = hydra::standard_configs(false, seed);
    DsTree::build(&data, configs.dstree)
        .unwrap()
        .save(&dir.join("walk-dstree.snap"))
        .unwrap();
    VaPlusFile::build(&data, configs.vafile)
        .unwrap()
        .save(&dir.join("walk-vafile.snap"))
        .unwrap();
    drop(data);
    let registry = hydra::standard_registry_pooled(false, seed, Some(1));

    // Warm-up boot: the first file-backed boot of a directory materializes
    // the flat-series sidecars. Sidecar writing is O(page) too, but it is
    // a once-per-directory cost, not a boot cost — measure steady state.
    boot_from_dir_with(&dir, &registry, BootOptions { file_backed: true }).unwrap();

    // The meter works: a resident boot materializes the Dataset, so its
    // peak must clear the payload.
    hydra_obs::reset_heap_peak();
    let live = hydra_obs::heap_live_bytes();
    let resident = boot_from_dir(&dir, &registry).unwrap();
    let resident_delta = hydra_obs::heap_peak_bytes() - live;
    assert_eq!(resident.indexes.len(), 2);
    assert!(
        resident_delta >= payload,
        "a resident boot must allocate at least the {payload}-byte payload, saw {resident_delta}"
    );
    drop(resident);

    // The promise holds: the streamed boot never allocates anything
    // dataset-sized.
    hydra_obs::reset_heap_peak();
    let live = hydra_obs::heap_live_bytes();
    let streamed =
        boot_from_dir_with(&dir, &registry, BootOptions { file_backed: true }).unwrap();
    let streamed_delta = hydra_obs::heap_peak_bytes() - live;
    assert_eq!(streamed.indexes.len(), 2);
    eprintln!("boot peaks: resident {resident_delta} bytes, streamed {streamed_delta} bytes");
    assert!(
        streamed_delta < payload / 2,
        "streamed boot peaked at {streamed_delta} heap bytes — a Dataset-sized allocation \
         ({payload} bytes of payload) crept back into the out-of-core boot path"
    );
    std::fs::remove_dir_all(&dir).ok();
}
