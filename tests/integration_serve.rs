//! Zoo-wide end-to-end serving test: every index of the study is built,
//! snapshotted, booted into an in-process `hydra-serve` server, and
//! queried over real TCP through concurrent connections — and every served
//! answer must be **byte-identical** to the offline path (per-query
//! `search` / `run_workload` on an index loaded from the same snapshot):
//! same neighbors, bit-identical distances, same workload accuracy.
//!
//! This is the acceptance contract of PR 4: a client cannot tell whether
//! its answers were computed by the paper's offline harness or by the
//! micro-batching server, except by how fast they arrive.
//!
//! The snapshot directory comes from [`common::in_memory_zoo`] — built
//! once per process and shared read-only, exactly as `fig3_inmemory
//! --save-index` lays a directory out.

mod common;

use std::time::Duration;

use hydra::prelude::*;
use hydra_serve::{boot_from_dir, ServeClient, Server, ServerConfig, ServerHandle};

#[test]
fn every_index_in_the_zoo_serves_byte_identical_answers() {
    let zoo = common::in_memory_zoo();
    let (dir, data) = (&zoo.dir, &zoo.data);
    let seed = 9;

    // Boot the server from the directory; keep an offline twin loaded from
    // the *same* snapshots (the persist contract makes it bit-identical to
    // what the server serves).
    let registry = hydra::standard_registry(true, seed);
    let booted = boot_from_dir(dir, &registry).unwrap();
    assert_eq!(booted.indexes.len(), 8, "the whole zoo must boot");
    let offline = boot_from_dir(dir, &registry).unwrap();
    let handle: ServerHandle = Server::spawn(
        booted.indexes,
        "127.0.0.1:0",
        ServerConfig {
            batch_window: Duration::from_millis(2),
            max_batch: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // The server's own listing agrees with the offline twin.
    let mut control = ServeClient::connect(addr).unwrap();
    let infos = control.list_indexes().unwrap();
    assert_eq!(infos.len(), 8);
    for (info, served) in infos.iter().zip(offline.indexes.iter()) {
        assert_eq!(info.name, served.name);
        assert_eq!(info.method, served.index.name());
        assert_eq!(info.capabilities(), {
            let mut caps = served.index.capabilities();
            caps.representation = hydra::Representation::Raw; // not on the wire
            caps
        });
    }

    let k = 10;
    let workload = hydra::data::noisy_queries(data, 12, &[0.0, 0.2], 77);
    let truth = hydra::data::ground_truth(data, &workload, k);

    for served in &offline.indexes {
        let caps = served.index.capabilities();
        let mut settings = vec![SearchParams::ng(k, 16)];
        if caps.exact {
            settings.push(SearchParams::exact(k));
        }
        if caps.delta_epsilon_approximate {
            settings.push(SearchParams::delta_epsilon(k, 0.9, 1.0));
        }
        for params in &settings {
            let answers = common::replay(addr, &served.name, params, &workload, 3);
            // Byte identity against the offline path, query by query.
            let mut per_query = Vec::with_capacity(workload.len());
            for (q, query) in workload.iter().enumerate() {
                let offline_answer = served.index.search(query, params).unwrap();
                let wire = &answers[q];
                assert_eq!(
                    wire.len(),
                    offline_answer.neighbors.len(),
                    "{} {params:?} query {q}: answer set size drifted",
                    served.name
                );
                for (a, b) in wire.iter().zip(offline_answer.neighbors.iter()) {
                    assert_eq!(
                        a.index, b.index,
                        "{} {params:?} query {q}: neighbor drifted",
                        served.name
                    );
                    assert_eq!(
                        a.distance.to_bits(),
                        b.distance.to_bits(),
                        "{} {params:?} query {q}: distance drifted",
                        served.name
                    );
                }
                let answer_truth = &truth.answers[q];
                per_query.push((
                    hydra::eval::recall(wire, answer_truth),
                    hydra::eval::average_precision(wire, answer_truth),
                    hydra::eval::mean_relative_error(wire, answer_truth),
                ));
            }
            // And the workload-level accuracy equals the offline runner's.
            let served_accuracy = hydra::eval::AccuracySummary::from_queries(&per_query);
            let offline_report =
                hydra::eval::run_workload(served.index.as_ref(), &workload, &truth, params);
            assert_eq!(
                served_accuracy, offline_report.accuracy,
                "{} {params:?}: workload accuracy drifted between serving and offline",
                served.name
            );
        }
    }

    control.shutdown().unwrap();
    drop(control);
    let stats = handle.join();
    // 8 methods; ng for all, exact for 3 (DSTree, iSAX2+, VA+file), δ-ε
    // for 5 (those three + SRS + QALSH), 12 queries each.
    assert_eq!(stats.queries, (8 + 3 + 5) as u64 * 12);
    assert!(stats.batch_calls >= 1 && stats.ticks >= 1);
}
