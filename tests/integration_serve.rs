//! Zoo-wide end-to-end serving test: every index of the study is built,
//! snapshotted, booted into an in-process `hydra-serve` server, and
//! queried over real TCP through concurrent connections — and every served
//! answer must be **byte-identical** to the offline path (per-query
//! `search` / `run_workload` on an index loaded from the same snapshot):
//! same neighbors, bit-identical distances, same workload accuracy.
//!
//! This is the acceptance contract of PR 4: a client cannot tell whether
//! its answers were computed by the paper's offline harness or by the
//! micro-batching server, except by how fast they arrive.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use hydra::prelude::*;
use hydra::Neighbor;
use hydra_serve::{
    boot_from_dir, Request, ResponseBody, ServeClient, Server, ServerConfig, ServerHandle,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hydra-integration-serve-{}-{name}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Replays `workload` against one served index through `connections`
/// concurrent TCP connections, returning the answers in workload order.
fn replay(
    addr: SocketAddr,
    index_name: &str,
    params: &SearchParams,
    workload: &hydra::data::QueryWorkload,
    connections: usize,
) -> Vec<Vec<Neighbor>> {
    let queries: Vec<&[f32]> = workload.iter().collect();
    let n = queries.len();
    let chunk = n.div_ceil(connections).max(1);
    let mut merged: Vec<Option<Vec<Neighbor>>> = vec![None; n];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, shard) in queries.chunks(chunk).enumerate() {
            let handle = scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                // Pipeline the whole shard, then collect by request id, so
                // the batcher genuinely sees bursts.
                for (i, query) in shard.iter().enumerate() {
                    client
                        .send(&Request::Query {
                            request_id: (i + 1) as u64,
                            index: index_name.to_string(),
                            params: *params,
                            query: query.to_vec(),
                        })
                        .expect("send");
                }
                let mut answers: Vec<Option<Vec<Neighbor>>> = vec![None; shard.len()];
                for _ in 0..shard.len() {
                    let response = client.recv().expect("recv");
                    let slot = (response.request_id - 1) as usize;
                    match response.body {
                        ResponseBody::Answer { neighbors } => {
                            assert!(answers[slot].is_none(), "duplicate response id");
                            answers[slot] = Some(neighbors);
                        }
                        other => panic!("query {} failed: {other:?}", response.request_id),
                    }
                }
                (c, answers)
            });
            handles.push(handle);
        }
        for handle in handles {
            let (c, answers) = handle.join().expect("replay connection panicked");
            for (i, answer) in answers.into_iter().enumerate() {
                merged[c * chunk + i] = Some(answer.expect("unanswered query"));
            }
        }
    });
    merged.into_iter().map(|a| a.unwrap()).collect()
}

#[test]
fn every_index_in_the_zoo_serves_byte_identical_answers() {
    let dir = temp_dir("zoo");
    let data = hydra::data::random_walk(400, 32, 2024);
    let seed = 9;
    let configs = hydra::standard_configs(true, seed);

    // Snapshot the dataset and the whole zoo, exactly as
    // `fig3_inmemory --save-index` lays a directory out.
    hydra::persist::dataset::save_dataset(&data, &dir.join("zoo.data.snap")).unwrap();
    DsTree::build(&data, configs.dstree)
        .unwrap()
        .save(&dir.join("zoo-dstree.snap"))
        .unwrap();
    Isax2Plus::build(&data, configs.isax)
        .unwrap()
        .save(&dir.join("zoo-isax2.snap"))
        .unwrap();
    VaPlusFile::build(&data, configs.vafile)
        .unwrap()
        .save(&dir.join("zoo-vafile.snap"))
        .unwrap();
    Srs::build(&data, configs.srs)
        .unwrap()
        .save(&dir.join("zoo-srs.snap"))
        .unwrap();
    InvertedMultiIndex::build(&data, configs.imi)
        .unwrap()
        .save(&dir.join("zoo-imi.snap"))
        .unwrap();
    Hnsw::build(&data, configs.hnsw)
        .unwrap()
        .save(&dir.join("zoo-hnsw.snap"))
        .unwrap();
    Qalsh::build(&data, configs.qalsh)
        .unwrap()
        .save(&dir.join("zoo-qalsh.snap"))
        .unwrap();
    Flann::build(&data, configs.flann)
        .unwrap()
        .save(&dir.join("zoo-flann.snap"))
        .unwrap();

    // Boot the server from the directory; keep an offline twin loaded from
    // the *same* snapshots (the persist contract makes it bit-identical to
    // what the server serves).
    let registry = hydra::standard_registry(true, seed);
    let booted = boot_from_dir(&dir, &registry).unwrap();
    assert_eq!(booted.indexes.len(), 8, "the whole zoo must boot");
    let offline = boot_from_dir(&dir, &registry).unwrap();
    let handle: ServerHandle = Server::spawn(
        booted.indexes,
        "127.0.0.1:0",
        ServerConfig {
            batch_window: Duration::from_millis(2),
            max_batch: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // The server's own listing agrees with the offline twin.
    let mut control = ServeClient::connect(addr).unwrap();
    let infos = control.list_indexes().unwrap();
    assert_eq!(infos.len(), 8);
    for (info, served) in infos.iter().zip(offline.indexes.iter()) {
        assert_eq!(info.name, served.name);
        assert_eq!(info.method, served.index.name());
        assert_eq!(info.capabilities(), {
            let mut caps = served.index.capabilities();
            caps.representation = hydra::Representation::Raw; // not on the wire
            caps
        });
    }

    let k = 10;
    let workload = hydra::data::noisy_queries(&data, 12, &[0.0, 0.2], 77);
    let truth = hydra::data::ground_truth(&data, &workload, k);

    for served in &offline.indexes {
        let caps = served.index.capabilities();
        let mut settings = vec![SearchParams::ng(k, 16)];
        if caps.exact {
            settings.push(SearchParams::exact(k));
        }
        if caps.delta_epsilon_approximate {
            settings.push(SearchParams::delta_epsilon(k, 0.9, 1.0));
        }
        for params in &settings {
            let answers = replay(addr, &served.name, params, &workload, 3);
            // Byte identity against the offline path, query by query.
            let mut per_query = Vec::with_capacity(workload.len());
            for (q, query) in workload.iter().enumerate() {
                let offline_answer = served.index.search(query, params).unwrap();
                let wire = &answers[q];
                assert_eq!(
                    wire.len(),
                    offline_answer.neighbors.len(),
                    "{} {params:?} query {q}: answer set size drifted",
                    served.name
                );
                for (a, b) in wire.iter().zip(offline_answer.neighbors.iter()) {
                    assert_eq!(
                        a.index, b.index,
                        "{} {params:?} query {q}: neighbor drifted",
                        served.name
                    );
                    assert_eq!(
                        a.distance.to_bits(),
                        b.distance.to_bits(),
                        "{} {params:?} query {q}: distance drifted",
                        served.name
                    );
                }
                let answer_truth = &truth.answers[q];
                per_query.push((
                    hydra::eval::recall(wire, answer_truth),
                    hydra::eval::average_precision(wire, answer_truth),
                    hydra::eval::mean_relative_error(wire, answer_truth),
                ));
            }
            // And the workload-level accuracy equals the offline runner's.
            let served_accuracy = hydra::eval::AccuracySummary::from_queries(&per_query);
            let offline_report =
                hydra::eval::run_workload(served.index.as_ref(), &workload, &truth, params);
            assert_eq!(
                served_accuracy, offline_report.accuracy,
                "{} {params:?}: workload accuracy drifted between serving and offline",
                served.name
            );
        }
    }

    control.shutdown().unwrap();
    drop(control);
    let stats = handle.join();
    // 8 methods; ng for all, exact for 3 (DSTree, iSAX2+, VA+file), δ-ε
    // for 5 (those three + SRS + QALSH), 12 queries each.
    assert_eq!(stats.queries, (8 + 3 + 5) as u64 * 12);
    assert!(stats.batch_calls >= 1 && stats.ticks >= 1);
    std::fs::remove_dir_all(&dir).ok();
}
