//! End-to-end verification of the paper's accuracy guarantees
//! (Definitions 5–7) for the extended data-series methods.

use hydra::prelude::*;
use hydra::AnnIndex;

/// Checks Definition 5: every returned distance is within (1 + ε) of the
/// exact k-th-NN distance.
fn assert_epsilon_guarantee(
    index: &dyn AnnIndex,
    data: &hydra::Dataset,
    queries: &hydra::data::QueryWorkload,
    k: usize,
    epsilon: f32,
) {
    for query in queries.iter() {
        let res = index.search(query, &SearchParams::epsilon(k, epsilon)).unwrap();
        let exact = hydra::data::exact_knn(data, query, k);
        let bound = (1.0 + epsilon) * exact[k - 1].distance + 1e-4;
        for n in &res.neighbors {
            assert!(
                n.distance <= bound,
                "{}: distance {} exceeds (1+{})·{}",
                index.name(),
                n.distance,
                epsilon,
                exact[k - 1].distance
            );
        }
    }
}

#[test]
fn epsilon_guarantee_holds_for_all_extended_methods() {
    let data = hydra::data::random_walk(1_000, 64, 11);
    let queries = hydra::data::noisy_queries(&data, 6, &[0.2, 0.5], 12);
    let dstree = DsTree::build(&data, DsTreeConfig::default()).unwrap();
    let isax = Isax2Plus::build(&data, IsaxConfig::default()).unwrap();
    let va = VaPlusFile::build(&data, VaPlusFileConfig::default()).unwrap();
    for eps in [0.0f32, 1.0, 3.0] {
        assert_epsilon_guarantee(&dstree, &data, &queries, 5, eps);
        assert_epsilon_guarantee(&isax, &data, &queries, 5, eps);
        assert_epsilon_guarantee(&va, &data, &queries, 5, eps);
    }
}

#[test]
fn epsilon_zero_delta_one_degenerates_to_exact_search() {
    // The paper: when delta = 1 and epsilon = 0, Algorithm 2 is equivalent to
    // the exact Algorithm 1.
    let data = hydra::data::seismic_like(600, 128, 13);
    let queries = hydra::data::noisy_queries(&data, 5, &[0.3], 14);
    let dstree = DsTree::build(&data, DsTreeConfig::default()).unwrap();
    for query in queries.iter() {
        let exact = dstree.search(query, &SearchParams::exact(10)).unwrap();
        let degenerate = dstree
            .search(query, &SearchParams::delta_epsilon(10, 1.0, 0.0))
            .unwrap();
        let a: Vec<f32> = exact.neighbors.iter().map(|n| n.distance).collect();
        let b: Vec<f32> = degenerate.neighbors.iter().map(|n| n.distance).collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}

#[test]
fn increasing_epsilon_reduces_work_monotonically_in_aggregate() {
    let data = hydra::data::random_walk(2_000, 64, 17);
    let queries = hydra::data::noisy_queries(&data, 8, &[0.2], 18);
    let truth = hydra::data::ground_truth(&data, &queries, 10);
    let dstree = DsTree::build(&data, DsTreeConfig::default()).unwrap();

    let mut prev_work = u64::MAX;
    for eps in [0.0f32, 1.0, 2.0, 5.0] {
        let report = hydra::eval::run_workload(
            &dstree,
            &queries,
            &truth,
            &SearchParams::epsilon(10, eps),
        );
        assert!(
            report.stats.distance_computations <= prev_work,
            "work must not increase with epsilon"
        );
        prev_work = report.stats.distance_computations;
        // Accuracy may drop with epsilon but the relative error never exceeds it.
        assert!(report.accuracy.mre <= eps as f64 + 1e-6);
    }
}

#[test]
fn delta_epsilon_accuracy_is_high_in_practice() {
    // The paper observes that delta-epsilon answers are near exact in
    // practice because the first ng-approximate answer is already good.
    let data = hydra::data::mri_like(1_000, 64, 19);
    let queries = hydra::data::noisy_queries(&data, 8, &[0.2], 20);
    let truth = hydra::data::ground_truth(&data, &queries, 10);
    for index in [
        Box::new(DsTree::build(&data, DsTreeConfig::default()).unwrap()) as Box<dyn AnnIndex>,
        Box::new(Isax2Plus::build(&data, IsaxConfig::default()).unwrap()),
    ] {
        let report = hydra::eval::run_workload(
            index.as_ref(),
            &queries,
            &truth,
            &SearchParams::delta_epsilon(10, 0.95, 1.0),
        );
        assert!(
            report.accuracy.map > 0.6,
            "{} delta-epsilon MAP too low: {}",
            index.name(),
            report.accuracy.map
        );
    }
}

#[test]
fn ng_answers_are_never_better_than_exact_and_visit_fewer_leaves() {
    let data = hydra::data::random_walk(1_500, 64, 23);
    let queries = hydra::data::noisy_queries(&data, 6, &[0.1], 24);
    let dstree = DsTree::build(&data, DsTreeConfig::default()).unwrap();
    let isax = Isax2Plus::build(&data, IsaxConfig::default()).unwrap();
    for index in [&dstree as &dyn AnnIndex, &isax] {
        for query in queries.iter() {
            let exact = index.search(query, &SearchParams::exact(5)).unwrap();
            let ng = index.search(query, &SearchParams::ng(5, 1)).unwrap();
            // Compare rank by rank: the ng answer at any rank is never closer
            // than the exact answer at the same rank. (The ng answer may hold
            // fewer than k neighbors if the single visited leaf is small.)
            for (ng_n, exact_n) in ng.neighbors.iter().zip(exact.neighbors.iter()) {
                assert!(ng_n.distance + 1e-6 >= exact_n.distance);
            }
            assert!(ng.stats.leaves_visited <= exact.stats.leaves_visited.max(1));
            assert!(ng.stats.distance_computations <= exact.stats.distance_computations);
        }
    }
}
