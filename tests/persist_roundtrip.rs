//! Property tests (vendored `proptest`): across randomized build
//! parameters, `save → load → save` produces **byte-identical** snapshot
//! files for iSAX2+, IMI and VA+file. Byte identity is a stronger claim
//! than answer identity — it proves the loader reconstructs *exactly* the
//! state the saver serialized, leaving no field to drift silently across
//! generations of snapshots.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use hydra::prelude::*;
use hydra::{Dataset, PersistentIndex};
use hydra::summarize::SaxParams;

static UNIQUE: AtomicUsize = AtomicUsize::new(0);

fn temp_pair(tag: &str) -> (PathBuf, PathBuf) {
    let id = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let base = std::env::temp_dir();
    let pid = std::process::id();
    (
        base.join(format!("hydra-prop-{tag}-{pid}-{id}-a.snap")),
        base.join(format!("hydra-prop-{tag}-{pid}-{id}-b.snap")),
    )
}

/// Saves `index`, reloads it, saves the reload, and asserts the two files
/// are byte-identical. Returns nothing; panics (failing the property) on
/// any divergence.
fn assert_save_load_save_identical<T>(tag: &str, index: &T, data: &Dataset, config: &T::Config)
where
    T: PersistentIndex,
{
    let (path_a, path_b) = temp_pair(tag);
    index.save(&path_a).unwrap();
    let loaded = T::load(&path_a, data, config).unwrap();
    loaded.save(&path_b).unwrap();
    let a = std::fs::read(&path_a).unwrap();
    let b = std::fs::read(&path_b).unwrap();
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
    assert_eq!(a, b, "{tag}: save→load→save must be byte-identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn isax_snapshots_are_byte_stable(
        n in 60usize..160,
        leaf_capacity in 8usize..40,
        seg_choice in 0usize..3,
        max_bits in 3usize..8,
        seed in 0usize..1_000,
    ) {
        let data = hydra::data::random_walk(n, 32, seed as u64);
        let config = IsaxConfig {
            sax: SaxParams::new([4, 8, 16][seg_choice], max_bits as u8),
            leaf_capacity,
            storage: StorageConfig::in_memory(),
            histogram_samples: 500,
            seed: seed as u64 ^ 0xA5,
        };
        let index = Isax2Plus::build(&data, config).unwrap();
        assert_save_load_save_identical("isax", &index, &data, &config);
    }

    #[test]
    fn imi_snapshots_are_byte_stable(
        n in 80usize..200,
        coarse_k in 4usize..12,
        pq_choice in 0usize..3,
        pq_k in 8usize..24,
        opq_flag in 0usize..2,
        seed in 0usize..1_000,
    ) {
        let data = hydra::data::sift_like(n, 16, seed as u64);
        let config = ImiConfig {
            coarse_k,
            pq_m: [2, 4, 8][pq_choice],
            pq_k,
            use_opq: opq_flag == 1,
            training_size: 150,
            kmeans_iters: 4,
            seed: seed as u64 ^ 0x1311,
        };
        let index = InvertedMultiIndex::build(&data, config).unwrap();
        assert_save_load_save_identical("imi", &index, &data, &config);
    }

    #[test]
    fn vafile_snapshots_are_byte_stable(
        n in 60usize..160,
        dft_coefficients in 2usize..8,
        bits in 2usize..6,
        seed in 0usize..1_000,
    ) {
        let data = hydra::data::random_walk(n, 32, seed as u64);
        let config = VaPlusFileConfig {
            dft_coefficients,
            bits_per_dim: bits as u8,
            storage: StorageConfig::in_memory(),
            histogram_samples: 500,
            seed: seed as u64 ^ 0xFA,
        };
        let index = VaPlusFile::build(&data, config).unwrap();
        assert_save_load_save_identical("vafile", &index, &data, &config);
    }
}
