//! Zoo-wide persistence integration: every index of the study is built,
//! snapshotted, restored in the same process, and must answer a whole
//! workload **identically** to the freshly built instance — same neighbors
//! (bit-for-bit distances), same per-query cost counters, same workload
//! accuracy. This is the acceptance contract of `hydra-persist`: a server
//! booting from snapshots is indistinguishable from one that paid the
//! build.

use std::path::{Path, PathBuf};

use hydra::prelude::*;
use hydra::{AnnIndex, Dataset, PersistentIndex, StoreBacking};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hydra-integration-persist-{}-{name}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Saves, reloads and interrogates one index: every query of the workload
/// must produce identical neighbors, distances and cost counters, and the
/// evaluation harness must report identical accuracy.
fn assert_roundtrip_identical<T>(index: &T, data: &Dataset, config: &T::Config, dir: &Path)
where
    T: AnnIndex + PersistentIndex,
{
    let path = dir.join(format!("{}.snap", T::KIND.replace('+', "plus")));
    index.save(&path).unwrap();
    let loaded = T::load(&path, data, config)
        .unwrap_or_else(|e| panic!("{} snapshot failed to load: {e}", T::KIND));

    let workload = hydra::data::noisy_queries(data, 10, &[0.0, 0.2], 1234);
    let k = 10;
    let caps = index.capabilities();
    let mut params = vec![SearchParams::ng(k, 16)];
    if caps.exact {
        params.push(SearchParams::exact(k));
    }
    if caps.delta_epsilon_approximate {
        params.push(SearchParams::delta_epsilon(k, 0.9, 1.0));
    }
    for p in &params {
        for query in workload.iter() {
            let a = index.search(query, p).unwrap();
            let b = loaded.search(query, p).unwrap();
            assert_eq!(
                a.neighbors.len(),
                b.neighbors.len(),
                "{}: answer set size drifted",
                index.name()
            );
            for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
                assert_eq!(x.index, y.index, "{}: neighbor drifted", index.name());
                assert_eq!(
                    x.distance.to_bits(),
                    y.distance.to_bits(),
                    "{}: distance drifted",
                    index.name()
                );
            }
            assert_eq!(a.stats, b.stats, "{}: cost counters drifted", index.name());
        }
        // The evaluation harness sees identical accuracy too (both runs
        // start from the same post-build / post-load storage state and
        // replay the same access sequence).
        let truth = hydra::data::ground_truth(data, &workload, k);
        let ra = hydra::eval::run_workload(index, &workload, &truth, p);
        let rb = hydra::eval::run_workload(&loaded, &workload, &truth, p);
        assert_eq!(
            ra.accuracy,
            rb.accuracy,
            "{}: workload accuracy drifted after reload",
            index.name()
        );
    }
}

#[test]
fn every_index_in_the_zoo_roundtrips_identically() {
    let dir = temp_dir("zoo");
    let data = hydra::data::random_walk(500, 32, 4242);
    let storage = StorageConfig::in_memory();

    let cfg = DsTreeConfig {
        leaf_capacity: 32,
        storage,
        histogram_samples: 2_000,
        seed: 1,
        ..DsTreeConfig::default()
    };
    assert_roundtrip_identical(&DsTree::build(&data, cfg).unwrap(), &data, &cfg, &dir);

    let cfg = IsaxConfig {
        leaf_capacity: 32,
        storage,
        histogram_samples: 2_000,
        seed: 2,
        ..IsaxConfig::default()
    };
    assert_roundtrip_identical(&Isax2Plus::build(&data, cfg).unwrap(), &data, &cfg, &dir);

    let cfg = VaPlusFileConfig {
        storage,
        histogram_samples: 2_000,
        seed: 3,
        ..VaPlusFileConfig::default()
    };
    assert_roundtrip_identical(&VaPlusFile::build(&data, cfg).unwrap(), &data, &cfg, &dir);

    let cfg = SrsConfig {
        projected_dims: 8,
        storage,
        seed: 4,
        ..SrsConfig::default()
    };
    assert_roundtrip_identical(&Srs::build(&data, cfg).unwrap(), &data, &cfg, &dir);

    let cfg = ImiConfig {
        coarse_k: 8,
        pq_m: 8,
        pq_k: 16,
        training_size: 400,
        kmeans_iters: 6,
        seed: 5,
        ..ImiConfig::default()
    };
    assert_roundtrip_identical(
        &InvertedMultiIndex::build(&data, cfg).unwrap(),
        &data,
        &cfg,
        &dir,
    );

    let cfg = HnswConfig {
        m: 6,
        ef_construction: 48,
        seed: 6,
    };
    assert_roundtrip_identical(&Hnsw::build(&data, cfg).unwrap(), &data, &cfg, &dir);

    let cfg = QalshConfig {
        num_hashes: 16,
        collision_threshold: 4,
        seed: 7,
        ..QalshConfig::default()
    };
    assert_roundtrip_identical(&Qalsh::build(&data, cfg).unwrap(), &data, &cfg, &dir);

    // FLANN, both inner algorithms.
    for force in [
        hydra::FlannAlgorithm::RandomizedKdTrees,
        hydra::FlannAlgorithm::HierarchicalKMeans,
    ] {
        let cfg = FlannConfig {
            force: Some(force),
            ..FlannConfig::default()
        };
        let dir = temp_dir(&format!("flann-{force:?}"));
        assert_roundtrip_identical(&Flann::build(&data, cfg).unwrap(), &data, &cfg, &dir);
        std::fs::remove_dir_all(&dir).ok();
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Loads one snapshot twice — resident and file-backed — at the given
/// buffer-pool geometry and proves the two indistinguishable over a whole
/// workload: same neighbors (bit-for-bit distances), same per-query
/// `QueryStats` (the shared accounting contract), same accuracy.
fn assert_file_backed_load_identical<T>(
    snapshot: &Path,
    data_snapshot: &Path,
    data: &Dataset,
    config: &T::Config,
) where
    T: AnnIndex + PersistentIndex,
{
    let resident = T::load_backed(snapshot, data, config, StoreBacking::Resident)
        .unwrap_or_else(|e| panic!("{}: resident load failed: {e}", T::KIND));
    let filed = T::load_backed(
        snapshot,
        data,
        config,
        StoreBacking::FileBacked {
            dataset_snapshot: Some(data_snapshot),
        },
    )
    .unwrap_or_else(|e| panic!("{}: file-backed load failed: {e}", T::KIND));

    let workload = hydra::data::noisy_queries(data, 8, &[0.0, 0.2], 777);
    let k = 10;
    let caps = resident.capabilities();
    let mut params = vec![SearchParams::ng(k, 16)];
    if caps.exact {
        params.push(SearchParams::exact(k));
    }
    if caps.delta_epsilon_approximate {
        params.push(SearchParams::delta_epsilon(k, 0.9, 1.0));
    }
    for p in &params {
        for query in workload.iter() {
            let a = resident.search(query, p).unwrap();
            let b = filed.search(query, p).unwrap();
            assert_eq!(a.neighbors.len(), b.neighbors.len(), "{}: answer size", T::KIND);
            for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
                assert_eq!(x.index, y.index, "{}: neighbor drifted", T::KIND);
                assert_eq!(
                    x.distance.to_bits(),
                    y.distance.to_bits(),
                    "{}: distance drifted",
                    T::KIND
                );
            }
            assert_eq!(
                a.stats, b.stats,
                "{}: QueryStats must be identical across backings",
                T::KIND
            );
        }
        let truth = hydra::data::ground_truth(data, &workload, k);
        let ra = hydra::eval::run_workload(&resident, &workload, &truth, p);
        let rb = hydra::eval::run_workload(&filed, &workload, &truth, p);
        assert_eq!(ra.accuracy, rb.accuracy, "{}: accuracy drifted", T::KIND);
    }
}

/// Every disk-capable method of the zoo, loaded file-backed and proven
/// byte-identical to the resident load of the same snapshot, at pool sizes
/// {1 page, ~dataset/2, effectively-infinite}. Small pages force real
/// multi-page traffic and eviction at the small pools.
#[test]
fn disk_capable_zoo_loads_file_backed_identically_at_every_pool_size() {
    let dir = temp_dir("file-backed-zoo");
    let data = hydra::data::random_walk(500, 32, 515);
    let data_snapshot = dir.join("walk.data.snap");
    hydra::persist::dataset::save_dataset(&data, &data_snapshot).unwrap();
    // 500 series × 32 × 4 B = 64 000 B of raw data; 4 KiB pages → ~16 pages.
    let pools = [1usize, 8, usize::MAX / 2];
    let page_bytes = 4096;

    let base = StorageConfig {
        page_bytes,
        buffer_pool_pages: 1,
        codec: hydra::PageCodec::F32,
        io: hydra::FileIoMode::Pread,
    };
    let dstree_cfg = DsTreeConfig {
        leaf_capacity: 32,
        storage: base,
        histogram_samples: 2_000,
        seed: 1,
        ..DsTreeConfig::default()
    };
    let isax_cfg = IsaxConfig {
        leaf_capacity: 32,
        storage: base,
        histogram_samples: 2_000,
        seed: 2,
        ..IsaxConfig::default()
    };
    let va_cfg = VaPlusFileConfig {
        storage: base,
        histogram_samples: 2_000,
        seed: 3,
        ..VaPlusFileConfig::default()
    };
    let srs_cfg = SrsConfig {
        projected_dims: 8,
        storage: base,
        seed: 4,
        ..SrsConfig::default()
    };
    DsTree::build(&data, dstree_cfg)
        .unwrap()
        .save(&dir.join("walk-dstree.snap"))
        .unwrap();
    Isax2Plus::build(&data, isax_cfg)
        .unwrap()
        .save(&dir.join("walk-isax2.snap"))
        .unwrap();
    VaPlusFile::build(&data, va_cfg)
        .unwrap()
        .save(&dir.join("walk-vafile.snap"))
        .unwrap();
    Srs::build(&data, srs_cfg)
        .unwrap()
        .save(&dir.join("walk-srs.snap"))
        .unwrap();

    for pool in pools {
        let storage = StorageConfig {
            page_bytes,
            buffer_pool_pages: pool,
            codec: hydra::PageCodec::F32,
            io: hydra::FileIoMode::Pread,
        };
        assert_file_backed_load_identical::<DsTree>(
            &dir.join("walk-dstree.snap"),
            &data_snapshot,
            &data,
            &DsTreeConfig { storage, ..dstree_cfg },
        );
        assert_file_backed_load_identical::<Isax2Plus>(
            &dir.join("walk-isax2.snap"),
            &data_snapshot,
            &data,
            &IsaxConfig { storage, ..isax_cfg },
        );
        assert_file_backed_load_identical::<VaPlusFile>(
            &dir.join("walk-vafile.snap"),
            &data_snapshot,
            &data,
            &VaPlusFileConfig { storage, ..va_cfg },
        );
        assert_file_backed_load_identical::<Srs>(
            &dir.join("walk-srs.snap"),
            &data_snapshot,
            &data,
            &SrsConfig { storage, ..srs_cfg },
        );
    }

    // The same snapshots also travel through the type-erased registry path
    // a server boots with: answers at pool size 1 equal answers at ∞.
    let mut registry = hydra::persist::LoaderRegistry::new();
    registry.register::<DsTree>(DsTreeConfig {
        storage: StorageConfig {
            page_bytes,
            buffer_pool_pages: 1,
            codec: hydra::PageCodec::F32,
            io: hydra::FileIoMode::Pread,
        },
        ..dstree_cfg
    });
    let tiny = registry
        .load_any_backed(
            &dir.join("walk-dstree.snap"),
            &data,
            StoreBacking::FileBacked {
                dataset_snapshot: Some(&data_snapshot),
            },
        )
        .unwrap();
    let resident = DsTree::load(&dir.join("walk-dstree.snap"), &data, &dstree_cfg).unwrap();
    let q = data.series(17);
    assert_eq!(
        tiny.search(q, &SearchParams::exact(5)).unwrap().neighbors,
        resident.search(q, &SearchParams::exact(5)).unwrap().neighbors,
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshots_of_one_kind_refuse_to_load_as_another() {
    let dir = temp_dir("cross-kind");
    let data = hydra::data::random_walk(200, 32, 99);
    let storage = StorageConfig::in_memory();
    let isax_cfg = IsaxConfig {
        storage,
        histogram_samples: 500,
        ..IsaxConfig::default()
    };
    let isax = Isax2Plus::build(&data, isax_cfg).unwrap();
    let path = dir.join("index.snap");
    isax.save(&path).unwrap();

    // Another index's loader must fail with KindMismatch — never by
    // misinterpreting the payload.
    let dstree_cfg = DsTreeConfig {
        storage,
        ..DsTreeConfig::default()
    };
    match DsTree::load(&path, &data, &dstree_cfg) {
        Err(hydra::PersistError::KindMismatch { expected, found }) => {
            assert_eq!(expected, "dstree");
            assert_eq!(found, "isax2+");
        }
        Err(other) => panic!("expected KindMismatch, got {other:?}"),
        Ok(_) => panic!("an iSAX snapshot must not load as a DSTree"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_snapshots_yield_typed_errors_at_the_index_level() {
    let dir = temp_dir("damage");
    let data = hydra::data::random_walk(150, 32, 7);
    let cfg = HnswConfig {
        m: 4,
        ef_construction: 32,
        seed: 1,
    };
    let hnsw = Hnsw::build(&data, cfg).unwrap();
    let path = dir.join("hnsw.snap");
    hnsw.save(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Truncation.
    std::fs::write(&path, &pristine[..pristine.len() - 12]).unwrap();
    assert!(matches!(
        Hnsw::load(&path, &data, &cfg),
        Err(hydra::PersistError::Truncated)
    ));

    // A flipped payload byte.
    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    assert!(matches!(
        Hnsw::load(&path, &data, &cfg),
        Err(hydra::PersistError::ChecksumMismatch { .. })
    ));

    // A future format version.
    let mut future = pristine.clone();
    future[8..12].copy_from_slice(&(hydra::persist::FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &future).unwrap();
    assert!(matches!(
        Hnsw::load(&path, &data, &cfg),
        Err(hydra::PersistError::VersionMismatch { .. })
    ));

    // The pristine file still loads after all that.
    std::fs::write(&path, &pristine).unwrap();
    assert!(Hnsw::load(&path, &data, &cfg).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}
