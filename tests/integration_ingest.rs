//! Streaming-ingest equivalence suite: the acceptance contract of the
//! live-growth PR.
//!
//! An index that ingested series `h..n` through `insert_batch` — in any
//! batch chunking, resident or file-backed, racing readers or not — must
//! be **indistinguishable** from an index built over all `n` series in
//! one shot: same neighbors, bit-identical distances, same
//! [`hydra::QueryStats`], and (because save-time compaction re-fingerprints
//! the grown data) byte-identical snapshots. Incremental snapshots close
//! the loop on disk: a base snapshot plus its ingest journal must load
//! back to the same grown index, and a damaged journal must yield its
//! typed [`hydra::PersistError`] and **no index**, never a partially
//! replayed one.

mod common;

use std::sync::RwLock;

use hydra::persist::{journal_path, JournalWriter};
use hydra::prelude::*;
use hydra::{AnnIndex, Dataset, Neighbor, PersistError, SearchParams, StoreBacking};

/// Streams `data[from..]` into `index` with batch sizes cycling through
/// `chunks` — the chunking must not matter, that is the point.
fn grow<T: AnnIndex>(mut index: T, data: &Dataset, from: usize, chunks: &[usize]) -> T {
    let n = data.len();
    let mut at = from;
    let mut ci = 0;
    while at < n {
        let hi = (at + chunks[ci % chunks.len()]).min(n);
        let batch: Vec<&[f32]> = (at..hi).map(|i| data.series(i)).collect();
        index.insert_batch(&batch).unwrap();
        at = hi;
        ci += 1;
    }
    index
}

/// The head of `data`: its first `h` series as an owned dataset.
fn head(data: &Dataset, h: usize) -> Dataset {
    Dataset::from_flat(data.series_len(), data.as_flat()[..h * data.series_len()].to_vec())
        .unwrap()
}

/// Every search setting `index` supports, in the shape the figure
/// harnesses sweep them.
fn settings_for(index: &dyn AnnIndex, k: usize) -> Vec<SearchParams> {
    let caps = index.capabilities();
    let mut settings = vec![SearchParams::ng(k, 16)];
    if caps.exact {
        settings.push(SearchParams::exact(k));
    }
    if caps.delta_epsilon_approximate {
        settings.push(SearchParams::delta_epsilon(k, 0.9, 1.0));
    }
    settings
}

/// Asserts `grown` answers exactly like `fresh` on every supported
/// setting — neighbors, distance bits, and `QueryStats` — both
/// single-threaded and under 4 concurrent reader threads.
fn assert_indistinguishable(
    method: &str,
    fresh: &dyn AnnIndex,
    grown: &dyn AnnIndex,
    queries: &hydra::data::QueryWorkload,
) {
    assert_eq!(fresh.num_series(), grown.num_series(), "{method}: size drifted");
    for params in settings_for(fresh, 5) {
        let expected: Vec<_> = queries
            .iter()
            .map(|q| fresh.search(q, &params).unwrap())
            .collect();
        // The I/O-*operation* counters depend on the shared buffer pool's
        // page-residency history (a pool hit charges no operation), which
        // legitimately differs between a fresh build and a grown one and
        // between reader interleavings; everything else — answers, CPU
        // counters, bytes_read — must never move.
        let check = |label: &str| {
            for (q, query) in queries.iter().enumerate() {
                let got = grown.search(query, &params).unwrap();
                let want = &expected[q];
                assert_eq!(
                    got.neighbors.len(),
                    want.neighbors.len(),
                    "{method} {label} {params:?} query {q}: answer set size drifted"
                );
                for (a, b) in got.neighbors.iter().zip(want.neighbors.iter()) {
                    assert_eq!(a.index, b.index, "{method} {label} {params:?} query {q}");
                    assert_eq!(
                        a.distance.to_bits(),
                        b.distance.to_bits(),
                        "{method} {label} {params:?} query {q}: distance bits drifted"
                    );
                }
                let (mut got_stats, mut want_stats) = (got.stats, want.stats.clone());
                got_stats.random_ios = 0;
                got_stats.sequential_ios = 0;
                want_stats.random_ios = 0;
                want_stats.sequential_ios = 0;
                assert_eq!(
                    got_stats, want_stats,
                    "{method} {label} {params:?} query {q}: QueryStats drifted"
                );
            }
        };
        check("1-thread");
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || check(&format!("4-thread[{t}]")));
            }
        });
    }
}

/// One ingest-capable method: build fresh over all of `data`, then grow
/// from several split points under several chunkings, asserting
/// indistinguishability each time — plus byte-identical grown snapshots.
fn check_method<T, F>(data: &Dataset, config: T::Config, build: F)
where
    T: AnnIndex + hydra::PersistentIndex + 'static,
    T::Config: Copy,
    F: Fn(&Dataset, T::Config) -> hydra::Result<T>,
{
    let n = data.len();
    let queries = hydra::data::noisy_queries(data, 6, &[0.0, 0.2], 404);
    let fresh = build(data, config).unwrap();
    assert!(
        fresh.capabilities().streaming_insert,
        "{} must advertise streaming insert",
        fresh.name()
    );
    let method = fresh.name();
    // (split point, batch-size cycle): the whole tail at once, ragged
    // alternating chunks, and one-by-one inserts.
    let variants: [(usize, &[usize]); 3] = [(n / 4, &[n]), (n / 2, &[7, 3]), (n - 1, &[1])];
    for (h, chunks) in variants {
        let grown = grow(build(&head(data, h), config).unwrap(), data, h, chunks);
        assert_indistinguishable(method, &fresh, &grown, &queries);
    }
    // Save-time compaction: a grown index snapshots byte-identically to
    // the fresh build (the fingerprint recompute covers ingested series).
    let dir = common::temp_dir(&format!("ingest-snap-{}", method.replace(['+', '/'], "")));
    let fresh_path = dir.join("fresh.snap");
    let grown_path = dir.join("grown.snap");
    let grown = grow(build(&head(data, n / 2), config).unwrap(), data, n / 2, &[13]);
    fresh.save(&fresh_path).unwrap();
    grown.save(&grown_path).unwrap();
    assert_eq!(
        std::fs::read(&fresh_path).unwrap(),
        std::fs::read(&grown_path).unwrap(),
        "{method}: a grown index must snapshot byte-identically to a fresh build"
    );
}

#[test]
fn every_ingest_capable_method_grows_equivalently_under_any_chunking() {
    let data = hydra::data::random_walk(240, 32, 6161);
    let configs = hydra::standard_configs(true, 9);
    check_method(&data, configs.dstree, DsTree::build);
    check_method(&data, configs.isax, Isax2Plus::build);
    check_method(&data, configs.vafile, VaPlusFile::build);
    check_method(&data, configs.srs, Srs::build);
    check_method(&data, configs.hnsw, Hnsw::build);
}

#[test]
fn a_bad_batch_is_rejected_atomically_without_growing() {
    let data = hydra::data::random_walk(120, 32, 7272);
    let configs = hydra::standard_configs(true, 9);
    let queries = hydra::data::noisy_queries(&data, 4, &[0.1], 11);
    fn check<T: AnnIndex>(mut index: T, data: &Dataset, queries: &hydra::data::QueryWorkload) {
        let method = index.name();
        let before = index.num_series();
        let expected: Vec<Vec<Neighbor>> = queries
            .iter()
            .map(|q| index.search(q, &SearchParams::ng(5, 16)).unwrap().neighbors)
            .collect();
        // One good series, one of the wrong length: the whole batch must
        // be rejected before any mutation.
        let good = data.series(0).to_vec();
        let bad = vec![0.0f32; data.series_len() + 1];
        let err = index.insert_batch(&[&good, &bad]).unwrap_err();
        assert!(
            matches!(err, hydra::Error::DimensionMismatch { .. }),
            "{method}: expected DimensionMismatch, got {err:?}"
        );
        assert_eq!(index.num_series(), before, "{method}: a rejected batch grew the index");
        for (q, query) in queries.iter().enumerate() {
            let after = index.search(query, &SearchParams::ng(5, 16)).unwrap().neighbors;
            assert_eq!(after, expected[q], "{method}: a rejected batch changed answers");
        }
        // The empty batch is a no-op, not an error — and does not grow.
        index.insert_batch(&[]).unwrap();
        assert_eq!(index.num_series(), before, "{method}: an empty batch grew the index");
    }
    check(DsTree::build(&data, configs.dstree).unwrap(), &data, &queries);
    check(Isax2Plus::build(&data, configs.isax).unwrap(), &data, &queries);
    check(VaPlusFile::build(&data, configs.vafile).unwrap(), &data, &queries);
    check(Srs::build(&data, configs.srs).unwrap(), &data, &queries);
    check(Hnsw::build(&data, configs.hnsw).unwrap(), &data, &queries);
}

#[test]
fn file_backed_ingest_answers_like_the_resident_full_build() {
    // A 1-page pool far smaller than the raw data: growth must keep the
    // buffer pool coherent while the backing file gains a tail.
    let data = hydra::data::random_walk(300, 64, 8484);
    let configs = hydra::standard_configs_pooled(false, 5, Some(1));
    let queries = hydra::data::noisy_queries(&data, 5, &[0.0, 0.2], 21);
    let dir = common::temp_dir("ingest-ooc");
    let h = 200;
    let head_data = head(&data, h);
    hydra::persist::dataset::save_dataset(&head_data, &dir.join("walk.data.snap")).unwrap();

    fn check<T, F>(
        dir: &std::path::Path,
        kind: &str,
        data: &Dataset,
        head_data: &Dataset,
        queries: &hydra::data::QueryWorkload,
        config: T::Config,
        build: F,
    ) where
        T: AnnIndex + hydra::PersistentIndex + 'static,
        T::Config: Copy,
        F: Fn(&Dataset, T::Config) -> hydra::Result<T>,
    {
        let fresh = build(data, config).unwrap();
        let snap = dir.join(format!("walk-{kind}.snap"));
        build(head_data, config).unwrap().save(&snap).unwrap();
        let data_snap = dir.join("walk.data.snap");
        let loaded = T::load_backed(
            &snap,
            head_data,
            &config,
            StoreBacking::FileBacked {
                dataset_snapshot: Some(&data_snap),
            },
        )
        .unwrap();
        let grown = grow(loaded, data, head_data.len(), &[17, 5]);
        assert_indistinguishable(fresh.name(), &fresh, &grown, queries);
    }
    check(&dir, "dstree", &data, &head_data, &queries, configs.dstree, DsTree::build);
    check(&dir, "isax2", &data, &head_data, &queries, configs.isax, Isax2Plus::build);
    check(&dir, "vafile", &data, &head_data, &queries, configs.vafile, VaPlusFile::build);
    check(&dir, "srs", &data, &head_data, &queries, configs.srs, Srs::build);
}

#[test]
fn queries_racing_ingest_see_a_consistent_chunk_prefix() {
    // The serving layer's locking discipline in miniature: a test-level
    // RwLock hands readers the index between `insert_batch` calls, so
    // every exact answer must equal the brute-force truth over *some*
    // chunk-boundary prefix — never a torn in-between state.
    const BASE: usize = 200;
    const CHUNK: usize = 20;
    let data = hydra::data::random_walk(400, 32, 9393);
    let configs = hydra::standard_configs_pooled(false, 5, Some(1));
    let query: Vec<f32> = data.series(3).to_vec();
    // Expected exact top-5 for every reachable prefix, keyed by size —
    // computed by a fresh build over each prefix, so the comparison is the
    // ingest-equivalence contract itself (bit-exact, same distance kernel).
    let truths: std::collections::BTreeMap<usize, Vec<Neighbor>> = (BASE..=data.len())
        .step_by(CHUNK)
        .map(|n| {
            let fresh = VaPlusFile::build(&head(&data, n), configs.vafile).unwrap();
            (n, fresh.search(&query, &SearchParams::exact(5)).unwrap().neighbors)
        })
        .collect();

    fn run(
        index: Box<dyn AnnIndex>,
        label: &str,
        data: &Dataset,
        query: &[f32],
        truths: &std::collections::BTreeMap<usize, Vec<Neighbor>>,
    ) {
        let lock = RwLock::new(index);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut at = BASE;
                while at < data.len() {
                    let hi = (at + CHUNK).min(data.len());
                    let batch: Vec<&[f32]> = (at..hi).map(|i| data.series(i)).collect();
                    lock.write().unwrap().insert_batch(&batch).unwrap();
                    at = hi;
                    std::thread::yield_now();
                }
            });
            for _ in 0..4 {
                let lock = &lock;
                scope.spawn(move || {
                    let mut seen_final = false;
                    while !seen_final {
                        let guard = lock.read().unwrap();
                        let n = guard.num_series();
                        let got = guard.search(query, &SearchParams::exact(5)).unwrap();
                        drop(guard);
                        let truth = truths.get(&n).unwrap_or_else(|| {
                            panic!("{label}: observed size {n} is not a chunk boundary")
                        });
                        assert_eq!(got.neighbors.len(), truth.len());
                        for (a, b) in got.neighbors.iter().zip(truth.iter()) {
                            assert_eq!(a.index, b.index, "{label}: torn answer at prefix {n}");
                            assert_eq!(
                                a.distance.to_bits(),
                                b.distance.to_bits(),
                                "{label}: torn distance at prefix {n}"
                            );
                        }
                        seen_final = n == data.len();
                    }
                });
            }
            writer.join().unwrap();
        });
    }

    let h = head(&data, BASE);
    run(
        Box::new(VaPlusFile::build(&h, configs.vafile).unwrap()),
        "vafile-resident",
        &data,
        &query,
        &truths,
    );
    // And the same race against a file-backed store behind a 1-page pool.
    let dir = common::temp_dir("ingest-race-ooc");
    hydra::persist::dataset::save_dataset(&h, &dir.join("walk.data.snap")).unwrap();
    let snap = dir.join("walk-vafile.snap");
    VaPlusFile::build(&h, configs.vafile).unwrap().save(&snap).unwrap();
    let data_snap = dir.join("walk.data.snap");
    let ooc = VaPlusFile::load_backed(
        &snap,
        &h,
        &configs.vafile,
        StoreBacking::FileBacked {
            dataset_snapshot: Some(&data_snap),
        },
    )
    .unwrap();
    run(Box::new(ooc), "vafile-file-backed-1-page", &data, &query, &truths);
}

#[test]
fn base_plus_journal_loads_back_to_the_grown_index_bit_for_bit() {
    let data = hydra::data::random_walk(260, 32, 1010);
    let h = 180;
    let head_data = head(&data, h);
    let seed = 9;
    let configs = hydra::standard_configs(true, seed);
    let registry = hydra::standard_registry(true, seed);
    let queries = hydra::data::noisy_queries(&data, 5, &[0.0, 0.2], 33);
    let dir = common::temp_dir("ingest-journal");

    fn check<T, F>(
        dir: &std::path::Path,
        kind: &str,
        registry: &hydra::persist::LoaderRegistry,
        data: &Dataset,
        head_data: &Dataset,
        queries: &hydra::data::QueryWorkload,
        config: T::Config,
        build: F,
    ) where
        T: AnnIndex + hydra::PersistentIndex + 'static,
        T::Config: Copy,
        F: Fn(&Dataset, T::Config) -> hydra::Result<T>,
    {
        let (h, n) = (head_data.len(), data.len());
        let snap = dir.join(format!("walk-{kind}.snap"));
        build(head_data, config).unwrap().save(&snap).unwrap();
        // Journal the tail in two ragged batches, as an ingesting server
        // would between full saves.
        let base = hydra::persist::peek_fingerprint(&snap).unwrap();
        let mut journal =
            JournalWriter::create(&journal_path(&snap), base, data.series_len()).unwrap();
        let mid = h + (n - h) / 3;
        let first: Vec<&[f32]> = (h..mid).map(|i| data.series(i)).collect();
        let second: Vec<&[f32]> = (mid..n).map(|i| data.series(i)).collect();
        journal.append_batch(&first).unwrap();
        journal.append_batch(&second).unwrap();
        drop(journal);
        // Replayed load == the in-memory grown index == the fresh build.
        let replayed = registry
            .load_any_journaled(&snap, head_data, StoreBacking::Resident)
            .unwrap();
        let fresh = build(data, config).unwrap();
        assert_indistinguishable(fresh.name(), &fresh, replayed.as_ref(), queries);
        // Compaction: a full save of the grown index deletes the journal's
        // reason to exist; the compacted base then loads with no journal.
        hydra::persist::remove_journal(&snap).unwrap();
        assert!(!journal_path(&snap).exists());
    }
    check(&dir, "dstree", &registry, &data, &head_data, &queries, configs.dstree, DsTree::build);
    check(&dir, "isax2", &registry, &data, &head_data, &queries, configs.isax, Isax2Plus::build);
    check(&dir, "vafile", &registry, &data, &head_data, &queries, configs.vafile, VaPlusFile::build);
    check(&dir, "srs", &registry, &data, &head_data, &queries, configs.srs, Srs::build);
    check(&dir, "hnsw", &registry, &data, &head_data, &queries, configs.hnsw, Hnsw::build);
}

#[test]
fn a_damaged_journal_is_a_typed_error_and_never_partial_state() {
    let data = hydra::data::random_walk(200, 32, 2020);
    let h = 150;
    let head_data = head(&data, h);
    let seed = 9;
    let configs = hydra::standard_configs(true, seed);
    let registry = hydra::standard_registry(true, seed);
    let dir = common::temp_dir("ingest-journal-damage");
    let snap = dir.join("walk-vafile.snap");
    VaPlusFile::build(&head_data, configs.vafile).unwrap().save(&snap).unwrap();
    let base = hydra::persist::peek_fingerprint(&snap).unwrap();
    let journal = journal_path(&snap);
    let write_journal = |base: u64| {
        let mut w = JournalWriter::create(&journal, base, data.series_len()).unwrap();
        let tail: Vec<&[f32]> = (h..data.len()).map(|i| data.series(i)).collect();
        w.append_batch(&tail[..20]).unwrap();
        w.append_batch(&tail[20..]).unwrap();
    };
    write_journal(base);
    let pristine = std::fs::read(&journal).unwrap();
    // Returns the loaded size so match arms stay debuggable (the index
    // itself has no Debug impl — and a failed load must yield no index).
    let load = |registry: &hydra::persist::LoaderRegistry| {
        registry
            .load_any_journaled(&snap, &head_data, StoreBacking::Resident)
            .map(|index| index.num_series())
    };
    assert_eq!(load(&registry).unwrap(), data.len(), "sanity: pristine replays");

    // Truncation anywhere — inside the header, a record header, or a
    // record body — is PersistError::Truncated and yields no index.
    for cut in [4usize, 20, 27, 36, pristine.len() - 1] {
        std::fs::write(&journal, &pristine[..cut]).unwrap();
        match load(&registry) {
            Err(PersistError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    // A flipped value byte is a checksum mismatch naming the record.
    let mut flipped = pristine.clone();
    let in_first_record = 28 + 8 + 3; // header, record count, 4th value byte
    flipped[in_first_record] ^= 0x40;
    std::fs::write(&journal, &flipped).unwrap();
    match load(&registry) {
        Err(PersistError::ChecksumMismatch { section }) => assert_eq!(section, 0),
        other => panic!("expected ChecksumMismatch on record 0, got {other:?}"),
    }
    // Wrong magic and an impossible record count are loud too.
    let mut bad_magic = pristine.clone();
    bad_magic[0] ^= 0xFF;
    std::fs::write(&journal, &bad_magic).unwrap();
    assert!(matches!(load(&registry), Err(PersistError::BadMagic)));
    let mut huge = pristine.clone();
    huge[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&journal, &huge).unwrap();
    assert!(
        matches!(load(&registry), Err(PersistError::Corrupt(_)) | Err(PersistError::Truncated)),
        "an impossible record count must not allocate or replay"
    );
    // A journal written against a *different* base pins the mismatch.
    write_journal(base ^ 0xDEAD_BEEF);
    match load(&registry) {
        Err(PersistError::FingerprintMismatch { .. }) => {}
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    std::fs::remove_file(&journal).ok();
}
