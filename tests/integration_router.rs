//! Router fault-injection suite: the multi-process half of the sharded
//! scale-out contract. A router in front of real shard workers must be
//! answer-identical to the unsharded index; a router in front of a
//! *misbehaving* worker must degrade into typed errors, quickly and only
//! for the queries it cannot answer completely —
//!
//! * a worker that dies mid-batch turns every affected query into an
//!   [`ErrorCode::Unavailable`] answer (never a hang, never a partial
//!   top-k), while other client connections keep working;
//! * a worker that accepts a query and stalls forever costs at most the
//!   configured worker timeout;
//! * a worker that comes back is picked up through the reconnection
//!   backoff without restarting the router.
//!
//! The misbehaving workers are scripted directly on the wire protocol
//! (raw [`TcpListener`] + `hydra_serve::protocol`), because a real
//! `Server` cannot be told to fail in precisely controlled ways.

mod common;

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use common::Scan;
use hydra::prelude::*;
use hydra::{partition, PartitionScheme};
use hydra_serve::protocol::read_request;
use hydra_serve::{
    ErrorCode, IndexInfo, Request, Response, ResponseBody, Router, RouterConfig, ServeClient,
    ServedIndex, Server, ServerConfig, ServerHandle,
};

const INDEX: &str = "walk-scan";

fn fast_config() -> RouterConfig {
    RouterConfig {
        worker_timeout: Duration::from_millis(400),
        connect_timeout: Duration::from_millis(200),
        boot_timeout: Duration::from_secs(5),
        backoff_initial: Duration::from_millis(10),
        backoff_max: Duration::from_millis(100),
        ..RouterConfig::default()
    }
}

/// A real worker: a full `hydra-serve` server holding one shard.
fn scan_worker(shard: &hydra::Dataset) -> ServerHandle {
    Server::spawn(
        vec![ServedIndex {
            name: INDEX.into(),
            index: Box::new(Scan {
                data: shard.clone(),
            }),
        }],
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap()
}

/// What the scripted worker does when a query arrives.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Answer correctly: the brute-force top-k over its shard, in local
    /// ids (the router owns the local→global remap).
    Healthy,
    /// Read the request, then drop the connection without answering — a
    /// worker crashing mid-call.
    CloseOnQuery,
    /// Read the request and never answer — a wedged worker.
    Stall,
}

/// A scripted shard worker speaking the real wire protocol on a real
/// socket, with a switchable failure mode. The listener stays alive across
/// failures so the router's reconnection attempts land on the same address,
/// as they would with a supervised worker restart.
struct ScriptedWorker {
    addr: SocketAddr,
    mode: Arc<Mutex<Mode>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ScriptedWorker {
    fn spawn(shard: hydra::Dataset, initial: Mode) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mode = Arc::new(Mutex::new(initial));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let (mode, stop) = (Arc::clone(&mode), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false).unwrap();
                            serve_scripted(stream, &shard, &mode, &stop);
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
        };
        Self {
            addr,
            mode,
            stop,
            thread: Some(thread),
        }
    }

    fn set_mode(&self, mode: Mode) {
        *self.mode.lock().unwrap() = mode;
    }
}

impl Drop for ScriptedWorker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.join().unwrap();
        }
    }
}

/// One connection to the scripted worker: real protocol frames in,
/// scripted behavior out. Returning drops the stream — the "crash".
fn serve_scripted(stream: TcpStream, shard: &hydra::Dataset, mode: &Mutex<Mode>, stop: &AtomicBool) {
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut respond = |response: Response| {
        let frame = response.encode();
        write_half
            .write_all(&frame)
            .and_then(|()| write_half.flush())
            .is_ok()
    };
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            _ => return,
        };
        match request {
            Request::ListIndexes { request_id } => {
                let ok = respond(Response {
                    request_id,
                    body: ResponseBody::Indexes {
                        indexes: vec![IndexInfo {
                            name: INDEX.into(),
                            method: "scan".into(),
                            num_series: shard.len() as u64,
                            series_len: shard.series_len() as u64,
                            exact: true,
                            ng_approximate: false,
                            epsilon_approximate: false,
                            delta_epsilon_approximate: false,
                            disk_resident: false,
                            streaming_insert: false,
                        }],
                    },
                });
                if !ok {
                    return;
                }
            }
            Request::Query {
                request_id,
                query,
                params,
                ..
            } => {
                let mode_now = *mode.lock().unwrap();
                match mode_now {
                    Mode::Healthy => {
                        let neighbors = common::brute_force_top_k(shard, &query, params.k);
                        if !respond(Response {
                            request_id,
                            body: ResponseBody::Answer { neighbors },
                        }) {
                            return;
                        }
                    }
                    Mode::CloseOnQuery => return,
                    Mode::Stall => {
                        while !stop.load(Ordering::SeqCst) {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        return;
                    }
                }
            }
            Request::Reload { request_id } => {
                // Like a real worker spawned without a `Reloader`: a typed
                // refusal, the connection stays up.
                let ok = respond(Response {
                    request_id,
                    body: ResponseBody::Error {
                        code: ErrorCode::Unavailable,
                        message: "scripted worker has no reloader".into(),
                    },
                });
                if !ok {
                    return;
                }
            }
            Request::Stats { request_id } => {
                // A minimal but well-formed exposition; these tests never
                // scrape the scripted worker, the arm only keeps the
                // protocol complete.
                let ok = respond(Response {
                    request_id,
                    body: ResponseBody::Stats {
                        text: "# TYPE hydra_queries_total counter\nhydra_queries_total 0\n"
                            .into(),
                    },
                });
                if !ok {
                    return;
                }
            }
            Request::Shutdown { request_id } => {
                let _ = respond(Response {
                    request_id,
                    body: ResponseBody::ShutdownAck,
                });
                return;
            }
        }
    }
}

fn query(client: &mut ServeClient, request_id: u64, series: &[f32], k: usize) -> ResponseBody {
    client
        .call(&Request::Query {
            request_id,
            index: INDEX.into(),
            params: SearchParams::exact(k),
            query: series.to_vec(),
        })
        .unwrap()
        .body
}

fn is_unavailable(body: &ResponseBody) -> bool {
    matches!(
        body,
        ResponseBody::Error {
            code: ErrorCode::Unavailable,
            ..
        }
    )
}

#[test]
fn routed_answers_over_real_workers_are_bit_identical_to_unsharded() {
    let data = hydra::data::random_walk(240, 16, 777);
    let unsharded = Scan { data: data.clone() };
    let (_, shards) = partition(&data, PartitionScheme::Contiguous, 2).unwrap();
    let workers: Vec<ServerHandle> = shards.iter().map(scan_worker).collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.local_addr()).collect();
    let router = Router::spawn(&addrs, "127.0.0.1:0", fast_config()).unwrap();

    let mut client = ServeClient::connect(router.local_addr()).unwrap();
    let infos = client.list_indexes().unwrap();
    assert_eq!(infos.len(), 1);
    assert_eq!(
        infos[0].num_series as usize,
        data.len(),
        "the merged listing sums the shards"
    );

    let k = 9;
    let workload = hydra::data::noisy_queries(&data, 10, &[0.0, 0.2], 17);
    for (q, series) in workload.iter().enumerate() {
        let offline = unsharded.search(series, &SearchParams::exact(k)).unwrap();
        match query(&mut client, (q + 1) as u64, series, k) {
            ResponseBody::Answer { neighbors } => {
                assert_eq!(neighbors.len(), offline.neighbors.len());
                for (a, b) in neighbors.iter().zip(offline.neighbors.iter()) {
                    assert_eq!(a.index, b.index, "query {q}: routed neighbor drifted");
                    assert_eq!(
                        a.distance.to_bits(),
                        b.distance.to_bits(),
                        "query {q}: routed distance drifted"
                    );
                }
            }
            other => panic!("query {q} failed: {other:?}"),
        }
    }

    // One client shutdown frame stops the whole deployment: the router acks
    // it, forwards it to every worker, and exits.
    client.shutdown().unwrap();
    drop(client);
    let stats = router.join();
    assert_eq!(stats.queries, 10);
    assert_eq!(stats.worker_errors, 0);
    for worker in workers {
        worker.join();
    }
}

#[test]
fn a_worker_dying_mid_batch_yields_typed_errors_and_other_connections_survive() {
    let data = hydra::data::random_walk(180, 12, 888);
    let (_, shards) = partition(&data, PartitionScheme::Contiguous, 2).unwrap();
    let real = scan_worker(&shards[0]);
    let scripted = ScriptedWorker::spawn(shards[1].clone(), Mode::Healthy);
    let router = Router::spawn(
        &[real.local_addr(), scripted.addr],
        "127.0.0.1:0",
        fast_config(),
    )
    .unwrap();
    let mut client = ServeClient::connect(router.local_addr()).unwrap();

    // First, a complete merged answer while both workers are healthy.
    let unsharded = Scan { data: data.clone() };
    let series: Vec<f32> = data.series(0).to_vec();
    let offline = unsharded.search(&series, &SearchParams::exact(5)).unwrap();
    match query(&mut client, 1, &series, 5) {
        ResponseBody::Answer { neighbors } => assert_eq!(neighbors, offline.neighbors),
        other => panic!("healthy query failed: {other:?}"),
    }

    // The worker dies. Every subsequent query on this connection becomes
    // one typed Unavailable answer within the timeout budget — not a hang,
    // not a partial top-k over the surviving shard.
    scripted.set_mode(Mode::CloseOnQuery);
    let started = Instant::now();
    for request_id in 2..=5u64 {
        let body = query(&mut client, request_id, &series, 5);
        assert!(
            is_unavailable(&body),
            "query {request_id} after worker death: expected Unavailable, got {body:?}"
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "typed errors must arrive fast, took {:?}",
        started.elapsed()
    );

    // Other connections are unaffected: the merged listing still answers
    // (it needs no worker call), on a fresh connection, immediately.
    let mut second = ServeClient::connect(router.local_addr()).unwrap();
    assert_eq!(second.list_indexes().unwrap().len(), 1);
    drop(second);

    // And the original connection is still usable — the errors were
    // per-query, not a poisoned stream.
    assert!(is_unavailable(&query(&mut client, 6, &series, 5)));

    drop(client);
    router.shutdown();
    let stats = router.join();
    assert!(
        stats.worker_errors >= 4,
        "each failed query counts a worker error: {stats:?}"
    );
    real.shutdown();
    real.join();
}

#[test]
fn a_stalled_worker_costs_at_most_the_worker_timeout() {
    let data = hydra::data::random_walk(160, 12, 999);
    let (_, shards) = partition(&data, PartitionScheme::Contiguous, 2).unwrap();
    let real = scan_worker(&shards[0]);
    let scripted = ScriptedWorker::spawn(shards[1].clone(), Mode::Stall);
    let config = fast_config();
    let router = Router::spawn(&[real.local_addr(), scripted.addr], "127.0.0.1:0", config).unwrap();

    // Pipeline the stalled query, then prove the router is not wedged by
    // serving another connection *while* the first is still waiting.
    let mut stalled = ServeClient::connect(router.local_addr()).unwrap();
    let series: Vec<f32> = data.series(1).to_vec();
    stalled
        .send(&Request::Query {
            request_id: 1,
            index: INDEX.into(),
            params: SearchParams::exact(3),
            query: series.clone(),
        })
        .unwrap();
    let mut other = ServeClient::connect(router.local_addr()).unwrap();
    assert_eq!(
        other.list_indexes().unwrap().len(),
        1,
        "an unrelated connection must not wait behind a stalled worker"
    );
    drop(other);

    let started = Instant::now();
    let response = stalled.recv().unwrap();
    let elapsed = started.elapsed();
    assert!(
        is_unavailable(&response.body),
        "a stall must become a typed error: {:?}",
        response.body
    );
    assert!(
        elapsed < config.worker_timeout + Duration::from_secs(2),
        "the stall cost {elapsed:?}; the budget was {:?}",
        config.worker_timeout
    );

    drop(stalled);
    router.shutdown();
    router.join();
    real.shutdown();
    real.join();
}

#[test]
fn the_router_reconnects_through_backoff_when_a_worker_restarts() {
    let data = hydra::data::random_walk(200, 12, 1234);
    let unsharded = Scan { data: data.clone() };
    let (_, shards) = partition(&data, PartitionScheme::Contiguous, 2).unwrap();
    let real = scan_worker(&shards[0]);
    let scripted = ScriptedWorker::spawn(shards[1].clone(), Mode::Healthy);
    let router = Router::spawn(
        &[real.local_addr(), scripted.addr],
        "127.0.0.1:0",
        fast_config(),
    )
    .unwrap();
    let mut client = ServeClient::connect(router.local_addr()).unwrap();
    let series: Vec<f32> = data.series(2).to_vec();
    let offline = unsharded.search(&series, &SearchParams::exact(6)).unwrap();

    // Healthy → crash: queries degrade to typed errors.
    assert!(matches!(
        query(&mut client, 1, &series, 6),
        ResponseBody::Answer { .. }
    ));
    scripted.set_mode(Mode::CloseOnQuery);
    assert!(is_unavailable(&query(&mut client, 2, &series, 6)));

    // Restart: the same address answers again. The router must recover
    // through its reconnection backoff without being told anything.
    scripted.set_mode(Mode::Healthy);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut request_id = 3;
    let recovered = loop {
        match query(&mut client, request_id, &series, 6) {
            ResponseBody::Answer { neighbors } => break neighbors,
            body if is_unavailable(&body) => {
                assert!(
                    Instant::now() < deadline,
                    "the router did not recover within 10 s of the worker restart"
                );
                request_id += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("unexpected response during recovery: {other:?}"),
        }
    };
    assert_eq!(
        recovered, offline.neighbors,
        "the recovered answer must be the full merged answer"
    );

    drop(client);
    router.shutdown();
    router.join();
    real.shutdown();
    real.join();
}
