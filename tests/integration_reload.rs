//! Hot-reload fault suite: swapping a grown snapshot directory into a
//! running `hydra-serve` server must lose nothing and mix nothing.
//!
//! The serving contract under reload:
//!
//! * no connection is dropped — clients pipelining queries across the
//!   swap receive every answer;
//! * every answer is computed entirely against one epoch, and per
//!   connection the observed epoch is monotone (old… then new, never
//!   interleaved back);
//! * a shutdown arriving while a (slow) reload is in flight still drains
//!   cleanly: the reload completes, its ack flushes, and `join` returns.
//!
//! The swap itself reuses the streaming-ingest story end to end: the
//! "new" directory is the old one re-saved after the dataset grew, so the
//! reloaded zoo serves series the booted zoo had never seen.

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use hydra::prelude::*;
use hydra::Dataset;
use hydra_serve::{
    boot_from_dir, Reloader, Request, ResponseBody, ServeClient, Server, ServerConfig,
};

fn head(data: &Dataset, h: usize) -> Dataset {
    Dataset::from_flat(data.series_len(), data.as_flat()[..h * data.series_len()].to_vec())
        .unwrap()
}

/// Saves the one-method snapshot directory the tests boot and reload:
/// `walk.data.snap` + `walk-vafile.snap` over `data`.
fn save_dir(dir: &std::path::Path, data: &Dataset, config: hydra::VaPlusFileConfig) {
    hydra::persist::dataset::save_dataset(data, &dir.join("walk.data.snap")).unwrap();
    VaPlusFile::build(data, config).unwrap().save(&dir.join("walk-vafile.snap")).unwrap();
}

#[test]
fn hot_reload_under_live_pipelined_connections_drops_nothing_and_never_mixes_epochs() {
    let seed = 5;
    let data = hydra::data::random_walk(260, 32, 3131);
    let head_data = head(&data, 200);
    let config = hydra::standard_configs(false, seed).vafile;
    let registry = hydra::standard_registry(false, seed);
    let dir = common::temp_dir("reload-live");
    save_dir(&dir, &head_data, config);

    // The probe query is the *last* series of the grown collection: only
    // the post-reload epoch contains it, so each answer's bit pattern
    // tells exactly which epoch computed it.
    let probe: Vec<f32> = data.series(data.len() - 1).to_vec();
    let params = SearchParams::exact(1);
    let old_truth = VaPlusFile::build(&head_data, config)
        .unwrap()
        .search(&probe, &params)
        .unwrap()
        .neighbors;
    let new_truth = VaPlusFile::build(&data, config)
        .unwrap()
        .search(&probe, &params)
        .unwrap()
        .neighbors;
    assert_ne!(
        (old_truth[0].index, old_truth[0].distance.to_bits()),
        (new_truth[0].index, new_truth[0].distance.to_bits()),
        "the probe must distinguish the epochs"
    );

    let booted = boot_from_dir(&dir, &registry).unwrap();
    let reload_dir = dir.clone();
    let reloader: Reloader = Box::new(move || {
        boot_from_dir(&reload_dir, &registry)
            .map(|report| report.indexes)
            .map_err(|e| e.to_string())
    });
    let handle = Server::spawn_reloadable(
        booted.indexes,
        "127.0.0.1:0",
        ServerConfig {
            batch_window: Duration::from_millis(2),
            max_batch: 8,
            ..ServerConfig::default()
        },
        Some(reloader),
    )
    .unwrap();
    let addr = handle.local_addr();

    // 3 connections pipeline bursts of probes across the swap; the main
    // thread rewrites the directory mid-flight and triggers the reload.
    // Each connection keeps bursting until it has run 3 whole bursts that
    // were *sent after the reload was acknowledged* — those must be
    // answered entirely by the new epoch.
    const BURST: usize = 8;
    let swapped = AtomicUsize::new(0);
    let classify = |neighbors: &[hydra::Neighbor]| -> &'static str {
        let got = (neighbors[0].index, neighbors[0].distance.to_bits());
        if got == (old_truth[0].index, old_truth[0].distance.to_bits()) {
            "old"
        } else if got == (new_truth[0].index, new_truth[0].distance.to_bits()) {
            "new"
        } else {
            panic!("torn answer: {neighbors:?} matches neither epoch");
        }
    };
    let total_answered = std::thread::scope(|scope| {
        let mut conns = Vec::new();
        for c in 0..3 {
            let (probe, swapped, classify) = (&probe, &swapped, &classify);
            conns.push(scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let mut answered = 0usize;
                let mut saw_new = false;
                let mut rounds_after_ack = 0usize;
                let mut round = 0usize;
                loop {
                    // Read the flag *before* sending: if the swap was
                    // already acknowledged, every query of this burst is
                    // enqueued after it and must answer from the new epoch.
                    let sent_after_ack = swapped.load(Ordering::SeqCst) > 0;
                    for i in 0..BURST {
                        client
                            .send(&Request::Query {
                                request_id: (round * BURST + i + 1) as u64,
                                index: "walk-vafile".into(),
                                params,
                                query: probe.clone(),
                            })
                            .unwrap();
                    }
                    for _ in 0..BURST {
                        let response = client.recv().unwrap();
                        let ResponseBody::Answer { neighbors } = response.body else {
                            panic!("connection {c}: query failed: {:?}", response.body);
                        };
                        answered += 1;
                        match classify(&neighbors) {
                            "new" => saw_new = true,
                            "old" => {
                                assert!(
                                    !saw_new,
                                    "connection {c} round {round}: epoch went backwards"
                                );
                                assert!(
                                    !sent_after_ack,
                                    "connection {c} round {round}: stale epoch after ack"
                                );
                            }
                            _ => unreachable!(),
                        }
                    }
                    round += 1;
                    if sent_after_ack {
                        rounds_after_ack += 1;
                        if rounds_after_ack >= 3 {
                            break;
                        }
                    }
                }
                assert!(saw_new, "connection {c} never reached the new epoch");
                assert_eq!(answered, round * BURST, "connection {c} lost answers");
                answered
            }));
        }
        // Let the connections get some old-epoch rounds in, then grow the
        // directory on disk and swap it live.
        std::thread::sleep(Duration::from_millis(30));
        save_dir(&dir, &data, config);
        let mut control = ServeClient::connect(addr).unwrap();
        let epoch = control.reload().unwrap();
        assert_eq!(epoch, 1, "first reload must land epoch 1");
        swapped.store(1, Ordering::SeqCst);
        // The control connection itself sees the grown zoo immediately.
        let infos = control.list_indexes().unwrap();
        assert_eq!(infos[0].num_series as usize, data.len());
        let answered: usize = conns
            .into_iter()
            .map(|conn| conn.join().expect("connection thread panicked"))
            .sum();
        control.shutdown().unwrap();
        answered
    });
    let stats = handle.join();
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.queries, total_answered as u64);
}

#[test]
fn shutdown_mid_swap_drains_cleanly_and_still_acks_the_reload() {
    let seed = 5;
    let data = hydra::data::random_walk(120, 32, 4242);
    let config = hydra::standard_configs(false, seed).vafile;
    let registry = hydra::standard_registry(false, seed);
    let dir = common::temp_dir("reload-shutdown");
    save_dir(&dir, &data, config);
    let booted = boot_from_dir(&dir, &registry).unwrap();
    // A deliberately slow reload source, so the shutdown genuinely lands
    // mid-swap.
    let reload_dir = dir.clone();
    let reloader: Reloader = Box::new(move || {
        std::thread::sleep(Duration::from_millis(300));
        boot_from_dir(&reload_dir, &registry)
            .map(|report| report.indexes)
            .map_err(|e| e.to_string())
    });
    let handle = Server::spawn_reloadable(
        booted.indexes,
        "127.0.0.1:0",
        ServerConfig::default(),
        Some(reloader),
    )
    .unwrap();
    let addr = handle.local_addr();
    let mut reloading = ServeClient::connect(addr).unwrap();
    reloading.send(&Request::Reload { request_id: 7 }).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let mut control = ServeClient::connect(addr).unwrap();
    control.shutdown().unwrap();
    // The in-flight reload completes, its ack flushes before the read
    // half closes, and join returns instead of hanging.
    let response = reloading.recv().unwrap();
    assert_eq!(response.request_id, 7);
    let ResponseBody::ReloadAck { epoch } = response.body else {
        panic!("expected ReloadAck, got {:?}", response.body);
    };
    assert_eq!(epoch, 1);
    let stats = handle.join();
    assert_eq!(stats.reloads, 1);
}

#[test]
fn a_failed_reload_keeps_serving_the_current_epoch() {
    let seed = 5;
    let data = hydra::data::random_walk(100, 32, 5353);
    let config = hydra::standard_configs(false, seed).vafile;
    let registry = hydra::standard_registry(false, seed);
    let dir = common::temp_dir("reload-fail");
    save_dir(&dir, &data, config);
    let booted = boot_from_dir(&dir, &registry).unwrap();
    let reload_dir = dir.clone();
    let reloader: Reloader = Box::new(move || {
        boot_from_dir(&reload_dir, &registry)
            .map(|report| report.indexes)
            .map_err(|e| e.to_string())
    });
    let handle = Server::spawn_reloadable(
        booted.indexes,
        "127.0.0.1:0",
        ServerConfig::default(),
        Some(reloader),
    )
    .unwrap();
    let addr = handle.local_addr();
    let mut client = ServeClient::connect(addr).unwrap();
    // Damage the directory: the reload must refuse and leave epoch 0
    // serving, not tear down the zoo it already has.
    let snap = dir.join("walk-vafile.snap");
    let pristine = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &pristine[..pristine.len() / 2]).unwrap();
    let err = client.reload().unwrap_err();
    assert!(format!("{err}").contains("Unavailable"), "got: {err}");
    let answer = client
        .call(&Request::Query {
            request_id: 9,
            index: "walk-vafile".into(),
            params: SearchParams::exact(3),
            query: data.series(0).to_vec(),
        })
        .unwrap();
    assert!(
        matches!(answer.body, ResponseBody::Answer { .. }),
        "epoch 0 must keep serving after a failed reload: {:?}",
        answer.body
    );
    // Repair and retry: the swap now lands.
    std::fs::write(&snap, &pristine).unwrap();
    assert_eq!(client.reload().unwrap(), 1);
    client.shutdown().unwrap();
    let stats = handle.join();
    assert_eq!(stats.reloads, 1);
}
