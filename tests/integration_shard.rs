//! Partition-equivalence acceptance suite for sharded scale-out (PR 6's
//! tentpole contract): splitting a dataset into `S` shards and searching
//! them through a [`ShardedIndex`] must be **indistinguishable** from
//! searching the unsharded index whenever the search class carries a
//! guarantee —
//!
//! * brute force and every exact-capable method answer **bit-identically**
//!   (same neighbors, same distance bits) at any shard count, either
//!   partition scheme, and any worker-thread count;
//! * ε-approximate search at ε = 0 collapses to exact and must also be
//!   bit-identical;
//! * ng-approximate methods have no such guarantee (the per-shard effort
//!   knob does *more* total work), so their accuracy must stay within
//!   documented bounds: a sharded run may not be meaningfully *worse* than
//!   the unsharded run;
//! * the merged [`hydra::QueryStats`] equal the field-wise sum of the
//!   per-shard searches — work is added, never hidden;
//! * all of the above holds when every shard is served **file-backed**
//!   from per-shard snapshot directories (the multi-process worker
//!   layout), not just resident.

mod common;

use common::Scan;
use hydra::prelude::*;
use hydra::{
    merge_top_k, partition, Capabilities, PartitionScheme, QueryStats, ShardedIndex, StoreBacking,
};

fn sharded_scan(
    data: &hydra::Dataset,
    scheme: PartitionScheme,
    num_shards: usize,
) -> ShardedIndex {
    ShardedIndex::from_partition(data, scheme, num_shards, |shard, _| {
        Ok(Box::new(Scan {
            data: shard.clone(),
        }))
    })
    .unwrap()
}

/// The exact searches a method supports: plain exact, plus ε = 0 when the
/// method carries the ε guarantee (ε = 0 means approximation ratio 1 —
/// the same contract as exact, so the same bit-identity requirement).
fn guaranteed_settings(caps: &Capabilities, k: usize) -> Vec<SearchParams> {
    let mut settings = Vec::new();
    if caps.exact {
        settings.push(SearchParams::exact(k));
        if caps.epsilon_approximate {
            settings.push(SearchParams::epsilon(k, 0.0));
        }
    }
    settings
}

fn assert_bit_identical(
    label: &str,
    params: &SearchParams,
    sharded: &dyn AnnIndex,
    unsharded: &dyn AnnIndex,
    workload: &hydra::data::QueryWorkload,
) {
    for (q, query) in workload.iter().enumerate() {
        let a = sharded.search(query, params).unwrap();
        let b = unsharded.search(query, params).unwrap();
        assert_eq!(
            a.neighbors.len(),
            b.neighbors.len(),
            "{label} {params:?} query {q}: answer size drifted"
        );
        for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
            assert_eq!(x.index, y.index, "{label} {params:?} query {q}: neighbor drifted");
            assert_eq!(
                x.distance.to_bits(),
                y.distance.to_bits(),
                "{label} {params:?} query {q}: distance drifted"
            );
        }
    }
}

#[test]
fn sharded_scan_is_bit_identical_across_schemes_shard_counts_and_threads() {
    let data = hydra::data::random_walk(301, 24, 31);
    let unsharded = Scan { data: data.clone() };
    let k = 7;
    let workload = hydra::data::noisy_queries(&data, 12, &[0.0, 0.3], 41);
    let truth = hydra::data::ground_truth(&data, &workload, k);
    let params = SearchParams::exact(k);
    let baseline = hydra::eval::run_workload(&unsharded, &workload, &truth, &params);
    assert_eq!(baseline.accuracy.map, 1.0, "brute force must be perfect");

    for scheme in [PartitionScheme::Contiguous, PartitionScheme::Strided] {
        for num_shards in [1usize, 2, 5] {
            let sharded = sharded_scan(&data, scheme, num_shards);
            assert_eq!(sharded.num_series(), data.len());
            assert_eq!(sharded.series_len(), data.series_len());
            let label = format!("scan/{scheme:?}/S={num_shards}");
            assert_bit_identical(&label, &params, &sharded, &unsharded, &workload);

            // Every shard scans all of its series: the merged counters are
            // the whole dataset per query, exactly as unsharded.
            let one = sharded.search(workload.iter().next().unwrap(), &params).unwrap();
            assert_eq!(one.stats.distance_computations, data.len() as u64, "{label}");

            // The whole workload through the threaded runner: accuracy and
            // CPU counters equal the sequential unsharded baseline.
            for threads in [1usize, 4] {
                let report = hydra::eval::run_workload_parallel(
                    &sharded, &workload, &truth, &params, threads,
                );
                assert_eq!(
                    report.accuracy, baseline.accuracy,
                    "{label} accuracy drifted at {threads} threads"
                );
                assert_eq!(
                    report.stats.distance_computations,
                    baseline.stats.distance_computations,
                    "{label} work drifted at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn sharded_zoo_guaranteed_searches_are_bit_identical_to_unsharded() {
    // The unsharded twins come from the shared snapshot fixture (the same
    // directory the serving test boots); the sharded builds use the same
    // standard configs per shard.
    let zoo = common::in_memory_zoo();
    let data = &zoo.data;
    let registry = hydra::standard_registry(true, 9);
    let booted = hydra_serve::boot_from_dir(&zoo.dir, &registry).unwrap();
    let k = 10;
    let workload = hydra::data::noisy_queries(data, 10, &[0.0, 0.2], 123);
    let configs = hydra::standard_configs(true, 9);

    let mut checked = 0;
    for served in &booted.indexes {
        let settings = guaranteed_settings(&served.index.capabilities(), k);
        if settings.is_empty() {
            continue; // no guarantee class to hold the method to
        }
        for num_shards in [1usize, 2, 5] {
            let sharded = ShardedIndex::from_partition(
                data,
                PartitionScheme::Contiguous,
                num_shards,
                |shard, _| {
                    Ok(match served.index.name() {
                        "DSTree" => {
                            Box::new(DsTree::build(shard, configs.dstree)?) as Box<dyn AnnIndex>
                        }
                        "iSAX2+" => Box::new(Isax2Plus::build(shard, configs.isax)?),
                        "VA+file" => Box::new(VaPlusFile::build(shard, configs.vafile)?),
                        other => panic!("unexpected exact-capable method {other}"),
                    })
                },
            )
            .unwrap();
            for params in &settings {
                let label = format!("{}/S={num_shards}", served.name);
                assert_bit_identical(&label, params, &sharded, served.index.as_ref(), &workload);
                checked += 1;
            }
        }
    }
    // DSTree, iSAX2+ and VA+file are the exact+ε methods of the zoo:
    // 3 methods × 2 settings × 3 shard counts.
    assert_eq!(checked, 18, "the exact-capable zoo shrank unexpectedly");
}

#[test]
fn sharded_zoo_ng_accuracy_stays_within_documented_bounds() {
    // ng-approximate search has no equivalence guarantee: the effort knob
    // (nprobe / candidates) applies *per shard*, so a sharded run does at
    // least as much work and in practice lands at equal-or-better
    // accuracy. The documented bound: sharding may not cost more than 0.05
    // MAP on this workload.
    let zoo = common::in_memory_zoo();
    let data = &zoo.data;
    let registry = hydra::standard_registry(true, 9);
    let booted = hydra_serve::boot_from_dir(&zoo.dir, &registry).unwrap();
    assert_eq!(booted.indexes.len(), 8, "the ng sweep must cover the whole zoo");
    let k = 10;
    let workload = hydra::data::noisy_queries(data, 10, &[0.0, 0.2], 321);
    let truth = hydra::data::ground_truth(data, &workload, k);
    let params = SearchParams::ng(k, 16);

    for served in &booted.indexes {
        let sharded = ShardedIndex::from_partition(
            data,
            PartitionScheme::Contiguous,
            2,
            |shard, _| {
                Ok(hydra::build_all_methods(shard, true, 9)
                    .into_iter()
                    .find(|m| m.name() == served.index.name())
                    .expect("method missing from build_all_methods"))
            },
        )
        .unwrap();
        let unsharded =
            hydra::eval::run_workload(served.index.as_ref(), &workload, &truth, &params);
        let shard_run = hydra::eval::run_workload(&sharded, &workload, &truth, &params);
        assert!(
            shard_run.accuracy.map + 0.05 >= unsharded.accuracy.map,
            "{}: sharded ng accuracy fell out of bounds (sharded MAP {} vs unsharded {})",
            served.name,
            shard_run.accuracy.map,
            unsharded.accuracy.map
        );
        // Answers stay well-formed after the global remap.
        let answer = sharded.search(workload.iter().next().unwrap(), &params).unwrap();
        assert!(answer.neighbors.len() <= k);
        assert!(answer.neighbors.iter().all(|n| n.index < data.len()));
    }
}

#[test]
fn merged_query_stats_equal_the_field_wise_sum_of_per_shard_searches() {
    let zoo = common::in_memory_zoo();
    let data = &zoo.data;
    let configs = hydra::standard_configs(true, 9);
    let k = 10;
    let workload = hydra::data::noisy_queries(data, 6, &[0.0, 0.2], 55);

    // Two identical sharded builds: one searched through the fan-out, the
    // twin searched shard by shard and merged by hand. Using a fresh twin
    // matters — some stores warm per-instance caches, so re-searching the
    // *same* shards would under-count I/O.
    type Build = fn(&hydra::Dataset, &hydra::StandardConfigs) -> Box<dyn AnnIndex>;
    let builders: [(Build, SearchParams); 2] = [
        (
            |d, c| Box::new(DsTree::build(d, c.dstree).unwrap()),
            SearchParams::exact(k),
        ),
        (
            |d, c| Box::new(VaPlusFile::build(d, c.vafile).unwrap()),
            SearchParams::ng(k, 16),
        ),
    ];
    for (build, params) in builders {
        let sharded = ShardedIndex::from_partition(data, PartitionScheme::Contiguous, 2, |s, _| {
            Ok(build(s, &configs))
        })
        .unwrap();
        let twin = ShardedIndex::from_partition(data, PartitionScheme::Contiguous, 2, |s, _| {
            Ok(build(s, &configs))
        })
        .unwrap();
        for query in workload.iter() {
            let merged = sharded.search(query, &params).unwrap();
            let mut stats = QueryStats::new();
            let mut per_shard = Vec::new();
            for (s, shard) in twin.shards().iter().enumerate() {
                let result = shard.search(query, &params).unwrap();
                stats.merge(&result.stats);
                per_shard.push(
                    result
                        .neighbors
                        .iter()
                        .map(|n| Neighbor::new(twin.map().to_global(s, n.index), n.distance))
                        .collect::<Vec<_>>(),
                );
            }
            let expected = merge_top_k(params.k, &per_shard);
            assert_eq!(merged.neighbors, expected, "{params:?}: merge drifted");
            assert_eq!(merged.stats, stats, "{params:?}: stats are not the per-shard sum");
        }
    }
}

#[test]
fn file_backed_sharded_search_matches_the_resident_unsharded_index() {
    // The multi-process layout, in one process: every shard is saved to
    // its own snapshot directory (what `fig4 --save-index --shards S`
    // writes and a `hydra-serve --shard-role worker` boots), loaded back
    // **file-backed**, and the fan-out over those out-of-core shards must
    // still answer bit-identically to the resident unsharded index.
    let dir = common::temp_dir("shard-filebacked");
    let data = common::ooc_dataset();
    let configs = hydra::standard_configs(false, 5);
    let unsharded = DsTree::build(&data, configs.dstree).unwrap();
    let k = 10;
    let workload = hydra::data::noisy_queries(&data, 8, &[0.0, 0.2], 66);
    let truth = hydra::data::ground_truth(&data, &workload, k);
    let params = SearchParams::exact(k);
    let baseline = hydra::eval::run_workload(&unsharded, &workload, &truth, &params);

    for num_shards in [2usize, 5] {
        let (map, shards) = partition(&data, PartitionScheme::Contiguous, num_shards).unwrap();
        let mut loaded: Vec<Box<dyn AnnIndex>> = Vec::new();
        for (s, shard_data) in shards.iter().enumerate() {
            let shard_dir = dir.join(format!("s{num_shards}-shard-{s}"));
            std::fs::create_dir_all(&shard_dir).unwrap();
            let data_snapshot = shard_dir.join("walk.data.snap");
            hydra::persist::dataset::save_dataset(shard_data, &data_snapshot).unwrap();
            let snapshot = shard_dir.join("walk-dstree.snap");
            DsTree::build(shard_data, configs.dstree)
                .unwrap()
                .save(&snapshot)
                .unwrap();
            let filed = DsTree::load_backed(
                &snapshot,
                shard_data,
                &configs.dstree,
                StoreBacking::FileBacked {
                    dataset_snapshot: Some(&data_snapshot),
                },
            )
            .unwrap();
            assert!(filed.store().is_file_backed());
            loaded.push(Box::new(filed));
        }
        let sharded = ShardedIndex::new(loaded, map).unwrap();
        let label = format!("dstree-filebacked/S={num_shards}");
        assert_bit_identical(&label, &params, &sharded, &unsharded, &workload);
        // Sharding changes how much pruning work exact search does (every
        // shard restarts its best-so-far at infinity), but the answers —
        // and therefore the accuracy — may not move, at any thread count;
        // and the CPU counters must be deterministic across thread counts.
        let sequential = hydra::eval::run_workload(&sharded, &workload, &truth, &params);
        assert_eq!(sequential.accuracy, baseline.accuracy, "{label}: accuracy drifted");
        for threads in [1usize, 4] {
            let report =
                hydra::eval::run_workload_parallel(&sharded, &workload, &truth, &params, threads);
            assert_eq!(
                report.accuracy, baseline.accuracy,
                "{label}: accuracy drifted at {threads} threads"
            );
            assert_eq!(
                report.stats.distance_computations, sequential.stats.distance_computations,
                "{label}: CPU work drifted at {threads} threads"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
