//! Out-of-core acceptance tests: a dataset whose raw series exceed the
//! configured buffer pool is built, snapshotted, loaded **file-backed**,
//! and served — concurrently and over a live `hydra-serve` session — with
//! answers byte-identical to the resident path, while the pool's
//! hit/miss/eviction counters show genuine eviction traffic.
//!
//! The standard-config snapshot directory comes from
//! [`common::on_disk_zoo`] (built once per process, shared read-only);
//! tests that need bespoke storage configs or that mutate their directory
//! (sidecar materialization from a cold start) keep private temp dirs.

mod common;

use std::path::Path;
use std::time::Duration;

use hydra::prelude::*;
use hydra::StoreBacking;
use hydra_serve::{boot_from_dir, boot_from_dir_with, BootOptions, ServeClient, Server, ServerConfig};

/// Saves the out-of-core dataset's snapshot into `dir` and returns the
/// dataset plus the snapshot path — the raw series (≈ 300 KiB) are ~5× a
/// default 64 KiB page, the genuinely disk-resident regime.
fn ooc_scenario(dir: &Path) -> (hydra::Dataset, std::path::PathBuf) {
    let data = common::ooc_dataset();
    let data_snapshot = dir.join("walk.data.snap");
    hydra::persist::dataset::save_dataset(&data, &data_snapshot).unwrap();
    (data, data_snapshot)
}

#[test]
fn parallel_workloads_over_a_file_backed_store_are_deterministic() {
    let dir = common::temp_dir("ooc-parallel");
    let (data, data_snapshot) = ooc_scenario(&dir);
    let config = DsTreeConfig {
        storage: StorageConfig::on_disk().with_pool_pages(1),
        histogram_samples: 2_000,
        seed: 3,
        ..DsTreeConfig::default()
    };
    let built = DsTree::build(&data, config).unwrap();
    let snapshot = dir.join("walk-dstree.snap");
    built.save(&snapshot).unwrap();
    let filed = DsTree::load_backed(
        &snapshot,
        &data,
        &config,
        StoreBacking::FileBacked {
            dataset_snapshot: Some(&data_snapshot),
        },
    )
    .unwrap();
    assert!(filed.store().is_file_backed());

    let workload = hydra::data::noisy_queries(&data, 12, &[0.0, 0.2], 99);
    let truth = hydra::data::ground_truth(&data, &workload, 10);
    for params in [SearchParams::exact(10), SearchParams::ng(10, 8)] {
        let baseline = hydra::eval::run_workload(&built, &workload, &truth, &params);
        for threads in [1usize, 2, 4] {
            let report =
                hydra::eval::run_workload_parallel(&filed, &workload, &truth, &params, threads);
            assert_eq!(
                report.accuracy, baseline.accuracy,
                "file-backed accuracy drifted at {threads} threads ({params:?})"
            );
            // CPU-side work is pool-independent and must not move either;
            // only the I/O-operation split may shift with interleaving
            // (same caveat as the resident store under parallelism).
            assert_eq!(
                report.stats.distance_computations, baseline.stats.distance_computations,
                "distance computations drifted at {threads} threads"
            );
            assert_eq!(report.stats.bytes_read, baseline.stats.bytes_read);
        }
    }
    // The thrashing pool really evicted (the dataset is ~5× its capacity).
    let io = filed.store().io_snapshot();
    assert!(io.pool_evictions > 0, "no eviction traffic: {io:?}");
    assert!(io.pool_misses > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backed_eviction_traffic_is_real_and_pinned() {
    let dir = common::temp_dir("ooc-evictions");
    let data = hydra::data::random_walk(256, 16, 4242);
    let data_snapshot = dir.join("walk.data.snap");
    hydra::persist::dataset::save_dataset(&data, &data_snapshot).unwrap();
    // 2 series per page (128 B pages), pool of 4 pages = 8 of 256 series.
    let config = SrsConfig {
        projected_dims: 8,
        storage: StorageConfig {
            page_bytes: 128,
            buffer_pool_pages: 4,
            codec: hydra::PageCodec::F32,
            io: hydra::FileIoMode::Pread,
        },
        seed: 7,
        ..SrsConfig::default()
    };
    let snapshot = dir.join("walk-srs.snap");
    Srs::build(&data, config).unwrap().save(&snapshot).unwrap();
    let filed = Srs::load_backed(
        &snapshot,
        &data,
        &config,
        StoreBacking::FileBacked {
            dataset_snapshot: Some(&data_snapshot),
        },
    )
    .unwrap();

    // A full sweep in record order: 128 pages through a 4-page pool.
    let mut stats = hydra::QueryStats::new();
    let store = filed.store();
    store.read_range(0, 256, &mut stats, &mut |_, _| {});
    let io = store.io_snapshot();
    assert_eq!(io.pool_misses, 128, "every page is cold exactly once");
    assert_eq!(io.pool_hits, 0);
    assert_eq!(io.pool_evictions, 128 - 4, "all but the pool's capacity evicted");
    assert_eq!(io.bytes_read, 256 * 16 * 4, "every raw byte transferred once");
    assert_eq!(stats.random_ios, 1);
    assert_eq!(stats.sequential_ios, 127);
    // Sweep again: the pool holds the *last* 4 pages, the scan starts at
    // page 0 — LRU gives zero hits on a cyclic scan larger than the cache.
    store.read_range(0, 256, &mut stats, &mut |_, _| {});
    let io = store.io_snapshot();
    assert_eq!(io.pool_misses, 256);
    assert_eq!(io.pool_hits, 0);
    assert_eq!(io.bytes_read, 2 * 256 * 16 * 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hydra_serve_over_a_file_backed_boot_answers_byte_identically() {
    let zoo = common::on_disk_zoo();
    let (dir, data) = (&zoo.dir, &zoo.data);
    let seed = 5;

    // Offline twin: resident boot under the default pool. Server: the same
    // snapshots booted file-backed behind a single-page pool — the raw
    // series are ~5× the cache.
    let resident = boot_from_dir(dir, &hydra::standard_registry(false, seed)).unwrap();
    let ooc_registry = hydra::standard_registry_pooled(false, seed, Some(1));
    let booted = boot_from_dir_with(
        dir,
        &ooc_registry,
        BootOptions { file_backed: true },
    )
    .unwrap();
    assert_eq!(booted.indexes.len(), 5);
    let handle = Server::spawn(
        booted.indexes,
        "127.0.0.1:0",
        ServerConfig {
            batch_window: Duration::from_millis(2),
            max_batch: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let k = 10;
    let workload = hydra::data::noisy_queries(data, 10, &[0.0, 0.2], 33);
    let truth = hydra::data::ground_truth(data, &workload, k);
    for served in &resident.indexes {
        let caps = served.index.capabilities();
        let mut settings = vec![SearchParams::ng(k, 16)];
        if caps.exact {
            settings.push(SearchParams::exact(k));
        }
        for params in &settings {
            let answers = common::replay(addr, &served.name, params, &workload, 3);
            let mut per_query = Vec::with_capacity(workload.len());
            for (q, query) in workload.iter().enumerate() {
                let offline = served.index.search(query, params).unwrap();
                let wire = &answers[q];
                assert_eq!(
                    wire.len(),
                    offline.neighbors.len(),
                    "{} {params:?} query {q}: answer size drifted out-of-core",
                    served.name
                );
                for (a, b) in wire.iter().zip(offline.neighbors.iter()) {
                    assert_eq!(a.index, b.index, "{} query {q}: neighbor drifted", served.name);
                    assert_eq!(
                        a.distance.to_bits(),
                        b.distance.to_bits(),
                        "{} query {q}: distance drifted",
                        served.name
                    );
                }
                let answer_truth = &truth.answers[q];
                per_query.push((
                    hydra::eval::recall(wire, answer_truth),
                    hydra::eval::average_precision(wire, answer_truth),
                    hydra::eval::mean_relative_error(wire, answer_truth),
                ));
            }
            let served_accuracy = hydra::eval::AccuracySummary::from_queries(&per_query);
            let offline_report =
                hydra::eval::run_workload(served.index.as_ref(), &workload, &truth, params);
            assert_eq!(
                served_accuracy, offline_report.accuracy,
                "{} {params:?}: accuracy drifted between file-backed serving and offline",
                served.name
            );
        }
    }

    let mut control = ServeClient::connect(addr).unwrap();
    control.shutdown().unwrap();
    drop(control);
    let stats = handle.join();
    assert!(stats.queries > 0);
}

#[test]
fn page_codec_matrix_answers_bit_identically_and_cuts_read_traffic() {
    let dir = common::temp_dir("ooc-codec-matrix");
    let (data, data_snapshot) = ooc_scenario(&dir);
    // One scan-shaped refiner (DSTree: contiguous leaf runs through
    // `scan_refine`) and one candidate-shaped refiner (VA+file: per-record
    // `refine`) cover both coded read paths.
    let dstree_base = DsTreeConfig {
        storage: StorageConfig::on_disk(),
        histogram_samples: 2_000,
        seed: 3,
        ..DsTreeConfig::default()
    };
    let vafile_base = VaPlusFileConfig {
        storage: StorageConfig::on_disk(),
        seed: 3,
        ..VaPlusFileConfig::default()
    };
    let dstree_snap = dir.join("walk-dstree.snap");
    DsTree::build(&data, dstree_base).unwrap().save(&dstree_snap).unwrap();
    let vafile_snap = dir.join("walk-vafile.snap");
    VaPlusFile::build(&data, vafile_base).unwrap().save(&vafile_snap).unwrap();

    let workload = hydra::data::noisy_queries(&data, 8, &[0.0, 0.2], 17);
    let truth = hydra::data::ground_truth(&data, &workload, 10);
    let settings = [SearchParams::exact(10), SearchParams::ng(10, 8)];

    // The resident-f32 twin is the answer oracle: every matrix cell must
    // reproduce its neighbors *and* distance bits exactly.
    let baseline_answers = |index: &dyn hydra::AnnIndex| -> Vec<Vec<(usize, u32)>> {
        settings
            .iter()
            .flat_map(|params| {
                workload.iter().map(move |q| {
                    index
                        .search(q, params)
                        .unwrap()
                        .neighbors
                        .iter()
                        .map(|n| (n.index, n.distance.to_bits()))
                        .collect()
                })
            })
            .collect()
    };
    let dstree_resident = DsTree::load_backed(
        &dstree_snap,
        &data,
        &dstree_base,
        StoreBacking::Resident,
    )
    .unwrap();
    let vafile_resident =
        VaPlusFile::load_backed(&vafile_snap, &data, &vafile_base, StoreBacking::Resident)
            .unwrap();
    let oracle_dstree = baseline_answers(&dstree_resident);
    let oracle_vafile = baseline_answers(&vafile_resident);

    // bytes_read per codec for the thrashing single-page pool, collected
    // from the matrix sweep below (threads = 1 cell, file-backed).
    let mut dstree_bytes = std::collections::HashMap::new();
    for codec in [
        hydra::PageCodec::F32,
        hydra::PageCodec::U8,
        hydra::PageCodec::F16,
    ] {
        for pool in [1usize, 4] {
            let storage = StorageConfig::on_disk().with_pool_pages(pool).with_page_codec(codec);
            let dstree_cfg = DsTreeConfig { storage, ..dstree_base };
            let vafile_cfg = VaPlusFileConfig { storage, ..vafile_base };
            let backing = StoreBacking::FileBacked {
                dataset_snapshot: Some(&data_snapshot),
            };
            let dstree = DsTree::load_backed(&dstree_snap, &data, &dstree_cfg, backing).unwrap();
            let vafile =
                VaPlusFile::load_backed(&vafile_snap, &data, &vafile_cfg, backing).unwrap();
            assert_eq!(
                baseline_answers(&dstree),
                oracle_dstree,
                "dstree answers drifted ({codec:?}, pool {pool})"
            );
            assert_eq!(
                baseline_answers(&vafile),
                oracle_vafile,
                "va+file answers drifted ({codec:?}, pool {pool})"
            );
            // Parallel serving over the coded tier: accuracy and CPU-side
            // counters must match the sequential run exactly.
            for params in &settings {
                let seq = hydra::eval::run_workload(&dstree, &workload, &truth, params);
                for threads in [1usize, 4] {
                    let par = hydra::eval::run_workload_parallel(
                        &dstree, &workload, &truth, params, threads,
                    );
                    assert_eq!(
                        par.accuracy, seq.accuracy,
                        "accuracy drifted ({codec:?}, pool {pool}, {threads} threads)"
                    );
                    assert_eq!(
                        par.stats.distance_computations,
                        seq.stats.distance_computations
                    );
                    assert_eq!(par.stats.bytes_read, seq.stats.bytes_read);
                }
            }
            if pool == 1 {
                dstree_bytes.insert(codec.name(), dstree.store().io_snapshot());
            }
        }
    }
    // Equal pool, same access pattern, smaller pages: the coded tiers move
    // genuinely fewer bytes, u8 at least 3× fewer than raw f32 pages, and
    // the coded traffic is broken out in its own counter.
    let raw = &dstree_bytes["f32"];
    let u8s = &dstree_bytes["u8"];
    let f16 = &dstree_bytes["f16"];
    assert!(
        u8s.bytes_read * 3 <= raw.bytes_read,
        "u8 pages read {} bytes vs raw {}",
        u8s.bytes_read,
        raw.bytes_read
    );
    assert!(f16.bytes_read < raw.bytes_read);
    assert!(u8s.bytes_read < f16.bytes_read);
    assert_eq!(raw.compressed_bytes_read, 0);
    assert!(u8s.compressed_bytes_read > 0);
    assert!(u8s.compressed_bytes_read <= u8s.bytes_read);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn backing_matrix_is_bit_identical_to_resident_across_pools_and_threads() {
    let dir = common::temp_dir("ooc-backing-matrix");
    let (data, data_snapshot) = ooc_scenario(&dir);
    let seed = 5;
    let build = hydra::standard_configs(false, seed);
    let dstree_snap = dir.join("walk-dstree.snap");
    DsTree::build(&data, build.dstree).unwrap().save(&dstree_snap).unwrap();
    let isax_snap = dir.join("walk-isax2.snap");
    Isax2Plus::build(&data, build.isax).unwrap().save(&isax_snap).unwrap();
    let vafile_snap = dir.join("walk-vafile.snap");
    VaPlusFile::build(&data, build.vafile).unwrap().save(&vafile_snap).unwrap();
    let srs_snap = dir.join("walk-srs.snap");
    Srs::build(&data, build.srs).unwrap().save(&srs_snap).unwrap();

    let workload = hydra::data::noisy_queries(&data, 8, &[0.0, 0.2], 21);
    let truth = hydra::data::ground_truth(&data, &workload, 10);

    // One loader per disk method, generic over the serving knobs (pool,
    // backing transfer mode) that must never leak into answers.
    type Loader<'a> =
        Box<dyn Fn(&hydra::StandardConfigs, StoreBacking<'_>) -> Box<dyn hydra::AnnIndex> + 'a>;
    let loaders: Vec<(&str, Loader<'_>)> = vec![
        (
            "dstree",
            Box::new(|c, b| {
                Box::new(DsTree::load_backed(&dstree_snap, &data, &c.dstree, b).unwrap())
            }),
        ),
        (
            "isax2",
            Box::new(|c, b| {
                Box::new(Isax2Plus::load_backed(&isax_snap, &data, &c.isax, b).unwrap())
            }),
        ),
        (
            "vafile",
            Box::new(|c, b| {
                Box::new(VaPlusFile::load_backed(&vafile_snap, &data, &c.vafile, b).unwrap())
            }),
        ),
        (
            "srs",
            Box::new(|c, b| Box::new(Srs::load_backed(&srs_snap, &data, &c.srs, b).unwrap())),
        ),
    ];

    // Pool axis: a thrashing single page, half the dataset's pages, and a
    // pool the dataset fits in entirely.
    let page_bytes = StorageConfig::on_disk().page_bytes;
    let total_pages = (data.len() * data.series_len() * 4).div_ceil(page_bytes);
    let pools = [1usize, (total_pages / 2).max(1), total_pages * 4];

    for (name, load) in &loaders {
        let resident = load(&hydra::standard_configs(false, seed), StoreBacking::Resident);
        let caps = resident.capabilities();
        let mut settings = vec![SearchParams::ng(10, 8)];
        if caps.exact {
            settings.push(SearchParams::exact(10));
        }
        // The resident twin is the oracle: neighbors, distance bits and the
        // logical bytes_read of every query, plus the workload-level
        // accuracy/CPU report.
        let oracle: Vec<Vec<(Vec<(usize, u32)>, u64)>> = settings
            .iter()
            .map(|params| {
                workload
                    .iter()
                    .map(|q| {
                        let r = resident.search(q, params).unwrap();
                        (
                            r.neighbors.iter().map(|n| (n.index, n.distance.to_bits())).collect(),
                            r.stats.bytes_read,
                        )
                    })
                    .collect()
            })
            .collect();
        let oracle_reports: Vec<_> = settings
            .iter()
            .map(|params| hydra::eval::run_workload(resident.as_ref(), &workload, &truth, params))
            .collect();

        for io in [hydra::FileIoMode::Pread, hydra::FileIoMode::Mmap] {
            for &pool in &pools {
                let cell = format!("{name} ({} backing, pool {pool})", io.name());
                let configs = hydra::standard_configs_io(
                    false,
                    seed,
                    Some(pool),
                    hydra::PageCodec::F32,
                    io,
                );
                let filed = load(
                    &configs,
                    StoreBacking::FileBacked {
                        dataset_snapshot: Some(&data_snapshot),
                    },
                );
                for (s, params) in settings.iter().enumerate() {
                    for (qi, q) in workload.iter().enumerate() {
                        let r = filed.search(q, params).unwrap();
                        let got: Vec<(usize, u32)> =
                            r.neighbors.iter().map(|n| (n.index, n.distance.to_bits())).collect();
                        assert_eq!(
                            got, oracle[s][qi].0,
                            "{cell} {params:?} query {qi}: neighbors/distances drifted"
                        );
                        assert_eq!(
                            r.stats.bytes_read, oracle[s][qi].1,
                            "{cell} {params:?} query {qi}: logical bytes_read drifted"
                        );
                    }
                    for threads in [1usize, 4] {
                        let par = hydra::eval::run_workload_parallel(
                            filed.as_ref(),
                            &workload,
                            &truth,
                            params,
                            threads,
                        );
                        assert_eq!(
                            par.accuracy, oracle_reports[s].accuracy,
                            "{cell} {params:?}: accuracy drifted at {threads} threads"
                        );
                        assert_eq!(
                            par.stats.distance_computations,
                            oracle_reports[s].stats.distance_computations,
                            "{cell} {params:?}: CPU work drifted at {threads} threads"
                        );
                        assert_eq!(
                            par.stats.bytes_read, oracle_reports[s].stats.bytes_read,
                            "{cell} {params:?}: bytes_read drifted at {threads} threads"
                        );
                    }
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_search_pins_its_working_set_and_cuts_pool_misses() {
    let dir = common::temp_dir("ooc-batch-pinning");
    let (data, data_snapshot) = ooc_scenario(&dir);
    // A 2-page pool against ~5 pages of raw series: per-query exact search
    // sweeps more pages than the pool holds, so a plain query loop is a
    // cyclic LRU worst case (zero hits), while the batch path's pinned
    // working set survives from query to query.
    let config = DsTreeConfig {
        storage: StorageConfig::on_disk().with_pool_pages(2),
        histogram_samples: 2_000,
        seed: 3,
        ..DsTreeConfig::default()
    };
    let snapshot = dir.join("walk-dstree.snap");
    DsTree::build(&data, config).unwrap().save(&snapshot).unwrap();
    let filed = DsTree::load_backed(
        &snapshot,
        &data,
        &config,
        StoreBacking::FileBacked {
            dataset_snapshot: Some(&data_snapshot),
        },
    )
    .unwrap();
    assert!(filed.store().is_file_backed());

    // A far-away query defeats pruning (every leaf looks equally
    // promising), so each search genuinely sweeps the collection.
    let query = vec![100.0f32; data.series_len()];
    let queries: Vec<&[f32]> = (0..8).map(|_| query.as_slice()).collect();
    let params = SearchParams::exact(10);

    filed.store().reset_io();
    let individual: Vec<_> =
        queries.iter().map(|q| filed.search(q, &params).unwrap()).collect();
    let loop_io = filed.store().io_snapshot();

    filed.store().reset_io();
    let batched = filed.search_batch(&queries, &params);
    let batch_io = filed.store().io_snapshot();

    // The batch contract first: answers and logical charges bit-identical.
    for (a, b) in individual.iter().zip(batched.iter()) {
        let b = b.as_ref().unwrap();
        assert_eq!(a.neighbors.len(), b.neighbors.len());
        for (x, y) in a.neighbors.iter().zip(b.neighbors.iter()) {
            assert_eq!(x.index, y.index, "batching changed a neighbor");
            assert_eq!(
                x.distance.to_bits(),
                y.distance.to_bits(),
                "batching changed a distance"
            );
        }
        assert_eq!(
            a.stats.bytes_read, b.stats.bytes_read,
            "logical bytes are batch-invariant"
        );
    }
    // The economics second: the pinned working set turns repeat visits
    // into pool hits, so the batch faults strictly fewer pages than the
    // loop (even counting its own prefetch sweep).
    assert!(
        batch_io.pool_misses < loop_io.pool_misses,
        "batch-aware pinning did not cut pool misses: batch {} vs loop {}",
        batch_io.pool_misses,
        loop_io.pool_misses
    );
    assert!(
        batch_io.pool_hits > loop_io.pool_hits,
        "pinned pages should be re-read as hits: batch {} vs loop {}",
        batch_io.pool_hits,
        loop_io.pool_hits
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn out_of_core_boot_writes_reusable_sidecars_for_tree_indexes() {
    // Private dir: this test asserts sidecar materialization from a cold
    // start, so it must not share a directory other boots already warmed.
    let dir = common::temp_dir("ooc-sidecars");
    let (data, _) = ooc_scenario(&dir);
    let configs = hydra::standard_configs(false, 5);
    Isax2Plus::build(&data, configs.isax)
        .unwrap()
        .save(&dir.join("walk-isax2.snap"))
        .unwrap();
    let registry = hydra::standard_registry_pooled(false, 5, Some(1));
    let options = BootOptions { file_backed: true };
    boot_from_dir_with(&dir, &registry, options).unwrap();
    let sidecar = dir.join("walk-isax2.snap.series");
    assert!(
        sidecar.exists(),
        "a file-backed boot materializes the leaf-ordered flat file once"
    );
    let first = std::fs::read(&sidecar).unwrap();
    // A second boot reuses the verified sidecar byte-for-byte.
    boot_from_dir_with(&dir, &registry, options).unwrap();
    assert_eq!(std::fs::read(&sidecar).unwrap(), first);
    std::fs::remove_dir_all(&dir).ok();
}
