//! Out-of-core acceptance tests: a dataset whose raw series exceed the
//! configured buffer pool is built, snapshotted, loaded **file-backed**,
//! and served — concurrently and over a live `hydra-serve` session — with
//! answers byte-identical to the resident path, while the pool's
//! hit/miss/eviction counters show genuine eviction traffic.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use hydra::prelude::*;
use hydra::{Neighbor, StoreBacking};
use hydra_serve::{
    boot_from_dir, boot_from_dir_with, BootOptions, Request, ResponseBody, ServeClient, Server,
    ServerConfig,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hydra-integration-ooc-{}-{name}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Raw series (1200 × 64 × 4 B ≈ 300 KiB) against a 1-page (64 KiB) pool:
/// the out-of-core regime with ~5× more data than cache.
fn ooc_scenario(dir: &PathBuf) -> (hydra::Dataset, PathBuf) {
    let data = hydra::data::random_walk(1_200, 64, 8181);
    assert!(
        data.len() * data.series_len() * 4 > StorageConfig::on_disk().page_bytes,
        "the dataset must not fit one page"
    );
    let data_snapshot = dir.join("walk.data.snap");
    hydra::persist::dataset::save_dataset(&data, &data_snapshot).unwrap();
    (data, data_snapshot)
}

#[test]
fn parallel_workloads_over_a_file_backed_store_are_deterministic() {
    let dir = temp_dir("parallel");
    let (data, data_snapshot) = ooc_scenario(&dir);
    let config = DsTreeConfig {
        storage: StorageConfig::on_disk().with_pool_pages(1),
        histogram_samples: 2_000,
        seed: 3,
        ..DsTreeConfig::default()
    };
    let built = DsTree::build(&data, config).unwrap();
    let snapshot = dir.join("walk-dstree.snap");
    built.save(&snapshot).unwrap();
    let filed = DsTree::load_backed(
        &snapshot,
        &data,
        &config,
        StoreBacking::FileBacked {
            dataset_snapshot: Some(&data_snapshot),
        },
    )
    .unwrap();
    assert!(filed.store().is_file_backed());

    let workload = hydra::data::noisy_queries(&data, 12, &[0.0, 0.2], 99);
    let truth = hydra::data::ground_truth(&data, &workload, 10);
    for params in [SearchParams::exact(10), SearchParams::ng(10, 8)] {
        let baseline = hydra::eval::run_workload(&built, &workload, &truth, &params);
        for threads in [1usize, 2, 4] {
            let report =
                hydra::eval::run_workload_parallel(&filed, &workload, &truth, &params, threads);
            assert_eq!(
                report.accuracy, baseline.accuracy,
                "file-backed accuracy drifted at {threads} threads ({params:?})"
            );
            // CPU-side work is pool-independent and must not move either;
            // only the I/O-operation split may shift with interleaving
            // (same caveat as the resident store under parallelism).
            assert_eq!(
                report.stats.distance_computations, baseline.stats.distance_computations,
                "distance computations drifted at {threads} threads"
            );
            assert_eq!(report.stats.bytes_read, baseline.stats.bytes_read);
        }
    }
    // The thrashing pool really evicted (the dataset is ~5× its capacity).
    let io = filed.store().io_snapshot();
    assert!(io.pool_evictions > 0, "no eviction traffic: {io:?}");
    assert!(io.pool_misses > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backed_eviction_traffic_is_real_and_pinned() {
    let dir = temp_dir("evictions");
    let data = hydra::data::random_walk(256, 16, 4242);
    let data_snapshot = dir.join("walk.data.snap");
    hydra::persist::dataset::save_dataset(&data, &data_snapshot).unwrap();
    // 2 series per page (128 B pages), pool of 4 pages = 8 of 256 series.
    let config = SrsConfig {
        projected_dims: 8,
        storage: StorageConfig {
            page_bytes: 128,
            buffer_pool_pages: 4,
        },
        seed: 7,
        ..SrsConfig::default()
    };
    let snapshot = dir.join("walk-srs.snap");
    Srs::build(&data, config).unwrap().save(&snapshot).unwrap();
    let filed = Srs::load_backed(
        &snapshot,
        &data,
        &config,
        StoreBacking::FileBacked {
            dataset_snapshot: Some(&data_snapshot),
        },
    )
    .unwrap();

    // A full sweep in record order: 128 pages through a 4-page pool.
    let mut stats = hydra::QueryStats::new();
    let store = filed.store();
    store.read_range(0, 256, &mut stats, &mut |_, _| {});
    let io = store.io_snapshot();
    assert_eq!(io.pool_misses, 128, "every page is cold exactly once");
    assert_eq!(io.pool_hits, 0);
    assert_eq!(io.pool_evictions, 128 - 4, "all but the pool's capacity evicted");
    assert_eq!(io.bytes_read, 256 * 16 * 4, "every raw byte transferred once");
    assert_eq!(stats.random_ios, 1);
    assert_eq!(stats.sequential_ios, 127);
    // Sweep again: the pool holds the *last* 4 pages, the scan starts at
    // page 0 — LRU gives zero hits on a cyclic scan larger than the cache.
    store.read_range(0, 256, &mut stats, &mut |_, _| {});
    let io = store.io_snapshot();
    assert_eq!(io.pool_misses, 256);
    assert_eq!(io.pool_hits, 0);
    assert_eq!(io.bytes_read, 2 * 256 * 16 * 4);
    std::fs::remove_dir_all(&dir).ok();
}

/// Replays `workload` against one served index through `connections`
/// concurrent TCP connections, returning the answers in workload order.
fn replay(
    addr: SocketAddr,
    index_name: &str,
    params: &SearchParams,
    workload: &hydra::data::QueryWorkload,
    connections: usize,
) -> Vec<Vec<Neighbor>> {
    let queries: Vec<&[f32]> = workload.iter().collect();
    let n = queries.len();
    let chunk = n.div_ceil(connections).max(1);
    let mut merged: Vec<Option<Vec<Neighbor>>> = vec![None; n];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, shard) in queries.chunks(chunk).enumerate() {
            let handle = scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for (i, query) in shard.iter().enumerate() {
                    client
                        .send(&Request::Query {
                            request_id: (i + 1) as u64,
                            index: index_name.to_string(),
                            params: *params,
                            query: query.to_vec(),
                        })
                        .expect("send");
                }
                let mut answers: Vec<Option<Vec<Neighbor>>> = vec![None; shard.len()];
                for _ in 0..shard.len() {
                    let response = client.recv().expect("recv");
                    let slot = (response.request_id - 1) as usize;
                    match response.body {
                        ResponseBody::Answer { neighbors } => answers[slot] = Some(neighbors),
                        other => panic!("query {} failed: {other:?}", response.request_id),
                    }
                }
                (c, answers)
            });
            handles.push(handle);
        }
        for handle in handles {
            let (c, answers) = handle.join().expect("replay connection panicked");
            for (i, answer) in answers.into_iter().enumerate() {
                merged[c * chunk + i] = Some(answer.expect("unanswered query"));
            }
        }
    });
    merged.into_iter().map(|a| a.unwrap()).collect()
}

#[test]
fn hydra_serve_over_a_file_backed_boot_answers_byte_identically() {
    let dir = temp_dir("serve");
    let (data, _) = ooc_scenario(&dir);
    let seed = 5;
    let configs = hydra::standard_configs(false, seed);
    DsTree::build(&data, configs.dstree)
        .unwrap()
        .save(&dir.join("walk-dstree.snap"))
        .unwrap();
    Isax2Plus::build(&data, configs.isax)
        .unwrap()
        .save(&dir.join("walk-isax2.snap"))
        .unwrap();
    VaPlusFile::build(&data, configs.vafile)
        .unwrap()
        .save(&dir.join("walk-vafile.snap"))
        .unwrap();
    Srs::build(&data, configs.srs)
        .unwrap()
        .save(&dir.join("walk-srs.snap"))
        .unwrap();
    InvertedMultiIndex::build(&data, configs.imi)
        .unwrap()
        .save(&dir.join("walk-imi.snap"))
        .unwrap();

    // Offline twin: resident boot under the default pool. Server: the same
    // snapshots booted file-backed behind a single-page pool — the raw
    // series are ~5× the cache.
    let resident = boot_from_dir(&dir, &hydra::standard_registry(false, seed)).unwrap();
    let ooc_registry = hydra::standard_registry_pooled(false, seed, Some(1));
    let booted = boot_from_dir_with(
        &dir,
        &ooc_registry,
        BootOptions { file_backed: true },
    )
    .unwrap();
    assert_eq!(booted.indexes.len(), 5);
    let handle = Server::spawn(
        booted.indexes,
        "127.0.0.1:0",
        ServerConfig {
            batch_window: Duration::from_millis(2),
            max_batch: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let k = 10;
    let workload = hydra::data::noisy_queries(&data, 10, &[0.0, 0.2], 33);
    let truth = hydra::data::ground_truth(&data, &workload, k);
    for served in &resident.indexes {
        let caps = served.index.capabilities();
        let mut settings = vec![SearchParams::ng(k, 16)];
        if caps.exact {
            settings.push(SearchParams::exact(k));
        }
        for params in &settings {
            let answers = replay(addr, &served.name, params, &workload, 3);
            let mut per_query = Vec::with_capacity(workload.len());
            for (q, query) in workload.iter().enumerate() {
                let offline = served.index.search(query, params).unwrap();
                let wire = &answers[q];
                assert_eq!(
                    wire.len(),
                    offline.neighbors.len(),
                    "{} {params:?} query {q}: answer size drifted out-of-core",
                    served.name
                );
                for (a, b) in wire.iter().zip(offline.neighbors.iter()) {
                    assert_eq!(a.index, b.index, "{} query {q}: neighbor drifted", served.name);
                    assert_eq!(
                        a.distance.to_bits(),
                        b.distance.to_bits(),
                        "{} query {q}: distance drifted",
                        served.name
                    );
                }
                let answer_truth = &truth.answers[q];
                per_query.push((
                    hydra::eval::recall(wire, answer_truth),
                    hydra::eval::average_precision(wire, answer_truth),
                    hydra::eval::mean_relative_error(wire, answer_truth),
                ));
            }
            let served_accuracy = hydra::eval::AccuracySummary::from_queries(&per_query);
            let offline_report =
                hydra::eval::run_workload(served.index.as_ref(), &workload, &truth, params);
            assert_eq!(
                served_accuracy, offline_report.accuracy,
                "{} {params:?}: accuracy drifted between file-backed serving and offline",
                served.name
            );
        }
    }

    let mut control = ServeClient::connect(addr).unwrap();
    control.shutdown().unwrap();
    drop(control);
    let stats = handle.join();
    assert!(stats.queries > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn out_of_core_boot_writes_reusable_sidecars_for_tree_indexes() {
    let dir = temp_dir("sidecars");
    let (data, _) = ooc_scenario(&dir);
    let configs = hydra::standard_configs(false, 5);
    Isax2Plus::build(&data, configs.isax)
        .unwrap()
        .save(&dir.join("walk-isax2.snap"))
        .unwrap();
    let registry = hydra::standard_registry_pooled(false, 5, Some(1));
    let options = BootOptions { file_backed: true };
    boot_from_dir_with(&dir, &registry, options).unwrap();
    let sidecar = dir.join("walk-isax2.snap.series");
    assert!(
        sidecar.exists(),
        "a file-backed boot materializes the leaf-ordered flat file once"
    );
    let first = std::fs::read(&sidecar).unwrap();
    // A second boot reuses the verified sidecar byte-for-byte.
    boot_from_dir_with(&dir, &registry, options).unwrap();
    assert_eq!(std::fs::read(&sidecar).unwrap(), first);
    std::fs::remove_dir_all(&dir).ok();
}
