//! Observability acceptance suite: the telemetry layer must *describe*
//! the serving pipeline without *touching* it.
//!
//! Two contracts are asserted over real TCP:
//!
//! 1. **Answers are unchanged.** Every answer served while metrics are
//!    being recorded is byte-identical (same neighbors, bit-identical
//!    distances) to the offline path on an index loaded from the same
//!    snapshots — observability never changes answers.
//! 2. **Scrapes reconcile exactly.** The `Stats` frame's Prometheus text
//!    exposition parses cleanly (every line a `# TYPE` header or one
//!    sample, no duplicate keys), `hydra_queries_total` equals the number
//!    of queries actually replayed, each
//!    `hydra_query_stats_total{counter=...}` equals the same counter
//!    summed over the offline runs' [`QueryStats`], and a second scrape
//!    is monotone on every counter. The router answers the same frame
//!    from its own registry, and its per-worker call counters reconcile
//!    with the worker's own served-query count.
//!
//! Queries replay sequentially through [`ServeClient::call`] (one query
//! per batch tick), so the batcher's `search_batch` degenerates to the
//! offline per-query path and the per-query counters must match exactly.

mod common;

use std::collections::BTreeMap;
use std::time::Duration;

use common::Scan;
use hydra::prelude::*;
use hydra::QueryStats;
use hydra_serve::{
    boot_from_dir, Request, ResponseBody, Router, RouterConfig, ServeClient, ServedIndex,
    Server, ServerConfig,
};

/// Parses a Prometheus text exposition into `sample key -> value`,
/// asserting the grammar on the way: every line is either a
/// `# TYPE <name> <kind>` header or a `<name>[{labels}] <value>` sample,
/// and no sample key appears twice.
fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "blank line in exposition");
        if let Some(header) = line.strip_prefix("# TYPE ") {
            let mut parts = header.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            assert!(!name.is_empty(), "TYPE header without a name: {line:?}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "TYPE header with unknown kind: {line:?}"
            );
            assert!(parts.next().is_none(), "trailing tokens in {line:?}");
            continue;
        }
        let (key, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable sample line {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value in sample line {line:?}"));
        assert!(
            samples.insert(key.to_string(), value).is_none(),
            "duplicate sample key {key:?}"
        );
    }
    samples
}

/// Looks up one sample and returns it as the non-negative integer every
/// counter (and `_count`) must be.
fn counter(samples: &BTreeMap<String, f64>, key: &str) -> u64 {
    let v = *samples
        .get(key)
        .unwrap_or_else(|| panic!("missing sample {key:?}"));
    assert!(
        v >= 0.0 && v.fract() == 0.0,
        "sample {key:?} is not a non-negative integer: {v}"
    );
    v as u64
}

/// Sends one query through `client` and returns the answer's neighbors,
/// panicking on any non-answer body.
fn ask(
    client: &mut ServeClient,
    request_id: u64,
    index: &str,
    params: &SearchParams,
    query: &[f32],
) -> Vec<hydra::Neighbor> {
    let response = client
        .call(&Request::Query {
            request_id,
            index: index.to_string(),
            params: *params,
            query: query.to_vec(),
        })
        .unwrap();
    match response.body {
        ResponseBody::Answer { neighbors } => neighbors,
        other => panic!("query {request_id} on {index:?} failed: {other:?}"),
    }
}

#[test]
fn scraped_metrics_reconcile_exactly_and_answers_stay_byte_identical() {
    let zoo = common::in_memory_zoo();
    let registry = hydra::standard_registry(true, 9);
    let booted = boot_from_dir(&zoo.dir, &registry).unwrap();
    assert_eq!(booted.indexes.len(), 8, "the whole zoo must boot");
    let offline = boot_from_dir(&zoo.dir, &registry).unwrap();
    let handle = Server::spawn(
        booted.indexes,
        "127.0.0.1:0",
        ServerConfig {
            batch_window: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let k = 10;
    let params = SearchParams::ng(k, 16);
    let workload = hydra::data::noisy_queries(&zoo.data, 6, &[0.0, 0.2], 41);

    // Replay the workload against every index, one query per call, while
    // the offline twin answers the same queries; answers must match to
    // the bit and the per-query stats sum into the reconciliation total.
    let mut client = ServeClient::connect(addr).unwrap();
    let mut offline_sums = QueryStats::new();
    let mut replayed: u64 = 0;
    for served in &offline.indexes {
        for (q, query) in workload.iter().enumerate() {
            replayed += 1;
            let wire = ask(&mut client, replayed, &served.name, &params, query);
            let answer = served.index.search(query, &params).unwrap();
            assert_eq!(
                wire.len(),
                answer.neighbors.len(),
                "{} query {q}: answer set size drifted under instrumentation",
                served.name
            );
            for (a, b) in wire.iter().zip(answer.neighbors.iter()) {
                assert_eq!(a.index, b.index, "{} query {q}: neighbor drifted", served.name);
                assert_eq!(
                    a.distance.to_bits(),
                    b.distance.to_bits(),
                    "{} query {q}: distance drifted",
                    served.name
                );
            }
            offline_sums.merge(&answer.stats);
        }
    }

    // One query for an index that does not exist: it must still be
    // *counted* (as a query and as a typed error), not just answered.
    let response = client
        .call(&Request::Query {
            request_id: replayed + 1,
            index: "no-such-index".into(),
            params,
            query: workload.iter().next().unwrap().to_vec(),
        })
        .unwrap();
    assert!(
        matches!(
            response.body,
            ResponseBody::Error {
                code: hydra_serve::ErrorCode::UnknownIndex,
                ..
            }
        ),
        "expected UnknownIndex, got {:?}",
        response.body
    );
    let total = replayed + 1;

    // First scrape: exact reconciliation.
    let first = parse_exposition(&client.stats().unwrap());
    assert_eq!(
        counter(&first, "hydra_queries_total"),
        total,
        "queries_total must equal the number of queries replayed"
    );
    assert_eq!(
        counter(&first, "hydra_query_micros_count"),
        total,
        "every query (even a failed one) must observe its latency"
    );
    assert_eq!(
        counter(&first, "hydra_query_errors_total{kind=\"unknown_index\"}"),
        1
    );
    assert_eq!(counter(&first, "hydra_query_errors_total{kind=\"search\"}"), 0);
    for (name, value) in offline_sums.counters() {
        assert_eq!(
            counter(&first, &format!("hydra_query_stats_total{{counter=\"{name}\"}}")),
            value,
            "scraped {name} must equal the offline QueryStats sum"
        );
    }
    assert!(counter(&first, "hydra_connections_total") >= 1);
    assert!(counter(&first, "hydra_ticks_total") >= 1);
    assert!(counter(&first, "hydra_batch_calls_total") >= replayed);
    assert_eq!(counter(&first, "hydra_rx_frames_total"), total + 1); // + the stats frame
    assert_eq!(*first.get("hydra_epoch").unwrap(), 0.0, "no reload has happened");
    assert_eq!(
        *first.get("hydra_reload_last_ok").unwrap(),
        -1.0,
        "reload_last_ok starts unset"
    );

    // More traffic (pipelined this time — grouping is allowed to batch),
    // then a second scrape: every counter-like sample is monotone and the
    // query total advances by exactly the replayed count.
    let more = common::replay(addr, &offline.indexes[0].name, &params, &workload, 2);
    assert_eq!(more.len(), workload.len());
    let second = parse_exposition(&client.stats().unwrap());
    assert_eq!(
        counter(&second, "hydra_queries_total"),
        total + workload.len() as u64
    );
    for (key, v1) in &first {
        if key.ends_with("_total") || key.ends_with("_count") || key.contains("_bucket{") {
            let v2 = second
                .get(key)
                .unwrap_or_else(|| panic!("sample {key:?} disappeared between scrapes"));
            assert!(
                v2 >= v1,
                "counter {key:?} went backwards between scrapes: {v1} -> {v2}"
            );
        }
    }

    client.shutdown().unwrap();
    drop(client);
    let stats = handle.join();
    // The legacy join() totals and the scraped registry agree.
    assert_eq!(stats.queries, total + workload.len() as u64);
}

#[test]
fn the_router_answers_stats_from_its_own_registry_and_reconciles_with_its_worker() {
    let data = hydra::data::random_walk(200, 16, 4242);
    let offline = Scan { data: data.clone() };
    let worker = Server::spawn(
        vec![ServedIndex {
            name: "walk-scan".into(),
            index: Box::new(Scan { data: data.clone() }),
        }],
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let router = Router::spawn(
        &[worker.local_addr()],
        "127.0.0.1:0",
        RouterConfig {
            worker_timeout: Duration::from_millis(800),
            connect_timeout: Duration::from_millis(400),
            boot_timeout: Duration::from_secs(5),
            ..RouterConfig::default()
        },
    )
    .unwrap();

    let k = 4;
    let params = SearchParams::exact(k);
    let workload = hydra::data::noisy_queries(&data, 5, &[0.0, 0.2], 7);
    let mut client = ServeClient::connect(router.local_addr()).unwrap();
    for (q, series) in workload.iter().enumerate() {
        let wire = ask(&mut client, (q + 1) as u64, "walk-scan", &params, series);
        let answer = offline.search(series, &params).unwrap();
        assert_eq!(wire.len(), answer.neighbors.len());
        for (a, b) in wire.iter().zip(answer.neighbors.iter()) {
            assert_eq!(a.index, b.index, "routed query {q}: neighbor drifted");
            assert_eq!(
                a.distance.to_bits(),
                b.distance.to_bits(),
                "routed query {q}: distance drifted"
            );
        }
    }

    // The router's scrape is its *own* registry: router-level families
    // plus one labeled family set per worker — never the worker's
    // server-level families.
    let samples = parse_exposition(&client.stats().unwrap());
    let queries = workload.len() as u64;
    assert_eq!(counter(&samples, "hydra_router_queries_total"), queries);
    assert!(counter(&samples, "hydra_router_connections_total") >= 1);
    assert!(
        !samples.contains_key("hydra_queries_total"),
        "the router must not leak worker-level families into its scrape"
    );
    let label = format!("worker=\"{}\"", worker.local_addr());
    assert!(
        counter(&samples, &format!("hydra_router_worker_calls_total{{{label}}}")) >= queries,
        "every routed query is one worker call"
    );
    assert_eq!(
        counter(&samples, &format!("hydra_router_worker_errors_total{{{label}}}")),
        0
    );
    assert_eq!(
        counter(&samples, &format!("hydra_router_worker_timeouts_total{{{label}}}")),
        0
    );
    assert_eq!(
        *samples
            .get(&format!("hydra_router_worker_in_flight{{{label}}}"))
            .unwrap(),
        0.0,
        "no call is in flight while the scrape itself is being answered"
    );
    assert!(
        counter(&samples, &format!("hydra_router_worker_call_micros_count{{{label}}}"))
            >= queries
    );

    // Cross-tier reconciliation: the worker's own scrape confirms it
    // served exactly the queries the router fanned out.
    let mut direct = ServeClient::connect(worker.local_addr()).unwrap();
    let worker_samples = parse_exposition(&direct.stats().unwrap());
    assert_eq!(counter(&worker_samples, "hydra_queries_total"), queries);
    drop(direct);

    // One client shutdown stops the deployment; the legacy router stats
    // agree with the scrape.
    client.shutdown().unwrap();
    drop(client);
    let stats = router.join();
    assert_eq!(stats.queries, queries);
    assert_eq!(stats.worker_errors, 0);
    worker.join();
}
