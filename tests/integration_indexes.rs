//! Cross-crate integration tests: every method of the study, built over the
//! same datasets and queried through the uniform `AnnIndex` interface.

use hydra::prelude::*;
use hydra::AnnIndex;

fn recall(found: &[hydra::Neighbor], truth: &[hydra::Neighbor]) -> f64 {
    let ids: std::collections::HashSet<usize> = truth.iter().map(|n| n.index).collect();
    found.iter().filter(|n| ids.contains(&n.index)).count() as f64 / truth.len() as f64
}

#[test]
fn all_methods_answer_knn_queries_on_random_walks() {
    let data = hydra::data::random_walk(1_200, 64, 101);
    let workload = hydra::data::noisy_queries(&data, 8, &[0.1], 102);
    let truth = hydra::data::ground_truth(&data, &workload, 10);
    let methods = hydra::build_all_methods(&data, true, 103);
    assert_eq!(methods.len(), 8, "all eight methods must build in memory");

    for method in &methods {
        // Pick a generous effort setting for each method family.
        let params = if method.capabilities().exact {
            SearchParams::exact(10)
        } else if method.capabilities().delta_epsilon_approximate {
            SearchParams::delta_epsilon(10, 0.99, 0.0)
        } else {
            SearchParams::ng(10, 256)
        };
        let mut total_recall = 0.0;
        for (q, query) in workload.iter().enumerate() {
            let res = method.search(query, &params).expect("query must succeed");
            assert!(res.neighbors.len() <= 10);
            // Distances must be sorted and consistent with the raw data for
            // methods that report true distances (all but IMI, which ranks
            // by compressed-domain distances only).
            for w in res.neighbors.windows(2) {
                assert!(w[0].distance <= w[1].distance, "{}", method.name());
            }
            if method.name() != "IMI" {
                for n in &res.neighbors {
                    let true_d = hydra::core::euclidean(query, data.series(n.index));
                    assert!(
                        (n.distance - true_d).abs() < 1e-3,
                        "{} must report true distances",
                        method.name()
                    );
                }
            }
            total_recall += recall(&res.neighbors, &truth.answers[q]);
        }
        let avg = total_recall / workload.len() as f64;
        let floor = match method.name() {
            "DSTree" | "iSAX2+" | "VA+file" => 0.99, // exact mode
            "IMI" => 0.3,                             // compressed-domain only
            _ => 0.5,
        };
        assert!(
            avg >= floor,
            "{} recall {avg} below floor {floor}",
            method.name()
        );
    }
}

#[test]
fn exact_methods_agree_with_each_other_and_with_ground_truth() {
    let data = hydra::data::mri_like(800, 128, 7);
    let queries = hydra::data::noisy_queries(&data, 5, &[0.2], 8);
    let truth = hydra::data::ground_truth(&data, &queries, 5);

    let dstree = DsTree::build(&data, DsTreeConfig::default()).unwrap();
    let isax = Isax2Plus::build(&data, IsaxConfig::default()).unwrap();
    let va = VaPlusFile::build(&data, VaPlusFileConfig::default()).unwrap();

    for (q, query) in queries.iter().enumerate() {
        let expected: Vec<f32> = truth.answers[q].iter().map(|n| n.distance).collect();
        for index in [&dstree as &dyn AnnIndex, &isax, &va] {
            let res = index.search(query, &SearchParams::exact(5)).unwrap();
            let got: Vec<f32> = res.neighbors.iter().map(|n| n.distance).collect();
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!(
                    (g - e).abs() < 1e-3,
                    "{} disagrees with ground truth",
                    index.name()
                );
            }
        }
    }
}

#[test]
fn disk_resident_methods_report_io_activity() {
    let data = hydra::data::random_walk(2_000, 64, 55);
    let workload = hydra::data::noisy_queries(&data, 5, &[0.1], 56);
    let truth = hydra::data::ground_truth(&data, &workload, 10);
    let methods = hydra::build_all_methods(&data, false, 57);

    for method in &methods {
        assert!(method.capabilities().disk_resident);
        let params = if method.capabilities().exact {
            SearchParams::exact(10)
        } else {
            SearchParams::ng(10, 64)
        };
        let report = hydra::eval::run_workload(method.as_ref(), &workload, &truth, &params);
        if method.name() == "IMI" {
            // IMI never touches the raw data.
            assert_eq!(report.stats.random_ios, 0, "IMI reads no raw data");
        } else {
            assert!(
                report.stats.random_ios + report.stats.sequential_ios > 0,
                "{} must charge simulated I/O",
                method.name()
            );
        }
    }
}

#[test]
fn methods_reject_unsupported_modes_consistently() {
    let data = hydra::data::random_walk(300, 32, 5);
    let methods = hydra::build_all_methods(&data, true, 6);
    let query = vec![0.0f32; 32];
    for method in &methods {
        let caps = method.capabilities();
        for (mode_supported, params) in [
            (caps.exact, SearchParams::exact(5)),
            (caps.ng_approximate, SearchParams::ng(5, 4)),
            (caps.epsilon_approximate, SearchParams::epsilon(5, 1.0)),
            (
                caps.delta_epsilon_approximate,
                SearchParams::delta_epsilon(5, 0.9, 1.0),
            ),
        ] {
            let result = method.search(&query, &params);
            assert_eq!(
                result.is_ok(),
                mode_supported,
                "{} capabilities disagree with search() for {:?}",
                method.name(),
                params.mode
            );
        }
    }
}
