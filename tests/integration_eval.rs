//! Integration tests of the evaluation harness: the properties the paper's
//! figures rely on (accuracy/efficiency trade-off curves, measure
//! relationships, I/O accounting) hold end to end.

use hydra::prelude::*;
use hydra_eval::{run_workload, run_workload_parallel, CsvWriter};

#[test]
fn throughput_accuracy_tradeoff_curves_are_monotone_for_ng_search() {
    // Figure 3/4 backbone: as nprobe grows, accuracy grows and work grows.
    let data = hydra::data::random_walk(2_000, 64, 31);
    let workload = hydra::data::noisy_queries(&data, 10, &[0.1], 32);
    let truth = hydra::data::ground_truth(&data, &workload, 10);
    let dstree = DsTree::build(&data, DsTreeConfig::default()).unwrap();

    let mut prev_map = 0.0;
    let mut prev_work = 0;
    for nprobe in [1usize, 4, 16, 64] {
        let report = run_workload(&dstree, &workload, &truth, &SearchParams::ng(10, nprobe));
        assert!(
            report.accuracy.map + 1e-9 >= prev_map,
            "MAP must not decrease with nprobe"
        );
        assert!(report.stats.distance_computations >= prev_work);
        prev_map = report.accuracy.map;
        prev_work = report.stats.distance_computations;
    }
    assert!(prev_map > 0.5, "large nprobe should reach decent accuracy");
}

#[test]
fn recall_equals_map_for_methods_that_rerank_with_true_distances() {
    // Figure 5a: Avg Recall == MAP for every method except IMI, because all
    // other methods sort candidates by their true Euclidean distances.
    let data = hydra::data::sift_like(1_500, 32, 33);
    let workload = hydra::data::noisy_queries(&data, 8, &[0.1], 34);
    let truth = hydra::data::ground_truth(&data, &workload, 10);
    let methods = hydra::build_all_methods(&data, true, 35);
    for method in &methods {
        let params = if method.capabilities().exact {
            SearchParams::exact(10)
        } else {
            SearchParams::ng(10, 128)
        };
        let report = run_workload(method.as_ref(), &workload, &truth, &params);
        if method.name() == "IMI" {
            continue;
        }
        assert!(
            (report.accuracy.avg_recall - report.accuracy.map).abs() < 0.05,
            "{}: recall {} vs MAP {} should nearly coincide",
            method.name(),
            report.accuracy.avg_recall,
            report.accuracy.map
        );
    }
}

#[test]
fn on_disk_configuration_charges_more_random_io_than_in_memory() {
    let data = hydra::data::random_walk(3_000, 64, 41);
    let workload = hydra::data::noisy_queries(&data, 6, &[0.1], 42);
    let truth = hydra::data::ground_truth(&data, &workload, 10);

    let on_disk = DsTree::build(
        &data,
        DsTreeConfig {
            storage: StorageConfig::on_disk(),
            ..DsTreeConfig::default()
        },
    )
    .unwrap();
    let in_mem = DsTree::build(
        &data,
        DsTreeConfig {
            storage: StorageConfig::in_memory(),
            ..DsTreeConfig::default()
        },
    )
    .unwrap();
    let params = SearchParams::epsilon(10, 1.0);
    let disk_report = run_workload(&on_disk, &workload, &truth, &params);
    // Warm the in-memory pool once, then measure (the paper's in-memory
    // scenario keeps data cached between queries).
    let _ = run_workload(&in_mem, &workload, &truth, &params);
    let mem_report = run_workload(&in_mem, &workload, &truth, &params);
    assert!(
        disk_report.stats.random_ios > mem_report.stats.random_ios,
        "on-disk must charge more random I/O ({} vs {})",
        disk_report.stats.random_ios,
        mem_report.stats.random_ios
    );
}

#[test]
fn effect_of_k_first_neighbor_dominates_cost() {
    // Figure 7: going from k=1 to k=100 costs much less than finding the
    // first neighbor (total time grows sublinearly in k).
    let data = hydra::data::random_walk(2_000, 64, 51);
    let workload = hydra::data::noisy_queries(&data, 6, &[0.1], 52);
    let dstree = DsTree::build(&data, DsTreeConfig::default()).unwrap();
    let mut work = Vec::new();
    for k in [1usize, 10, 100] {
        let truth = hydra::data::ground_truth(&data, &workload, k);
        let report = run_workload(&dstree, &workload, &truth, &SearchParams::epsilon(k, 1.0));
        work.push(report.stats.distance_computations as f64);
    }
    // Cost at k=100 is far less than 100x the cost at k=1.
    assert!(work[2] < work[0] * 50.0, "k=100 cost {} vs k=1 cost {}", work[2], work[0]);
    assert!(work[0] <= work[1] && work[1] <= work[2]);
}

#[test]
fn parallel_runner_matches_sequential_runner_across_the_index_zoo() {
    // The determinism contract of `search_batch` / `run_workload_parallel`,
    // end to end: for every method whose cost counters are query-local
    // (no shared buffer-pool state), accuracy AND summed stats at 1, 2 and
    // 4 threads are identical to the sequential runner. Covers the batch
    // overrides (IMI's shared ADC pass, QALSH's scratch reuse) and the
    // default per-query fallback (HNSW, FLANN).
    let data = hydra::data::sift_like(1_200, 32, 71);
    let workload = hydra::data::noisy_queries(&data, 11, &[0.0, 0.1, 0.25], 72);
    let truth = hydra::data::ground_truth(&data, &workload, 10);
    let params = SearchParams::ng(10, 32);

    let methods: Vec<Box<dyn AnnIndex>> = vec![
        Box::new(
            InvertedMultiIndex::build(
                &data,
                ImiConfig {
                    coarse_k: 16,
                    pq_k: 32,
                    training_size: 600,
                    ..ImiConfig::default()
                },
            )
            .unwrap(),
        ),
        Box::new(
            Qalsh::build(
                &data,
                QalshConfig {
                    seed: 73,
                    ..QalshConfig::default()
                },
            )
            .unwrap(),
        ),
        Box::new(
            Hnsw::build(
                &data,
                HnswConfig {
                    m: 8,
                    ef_construction: 64,
                    seed: 74,
                },
            )
            .unwrap(),
        ),
        Box::new(Flann::build(&data, FlannConfig::default()).unwrap()),
    ];
    for method in &methods {
        let sequential = run_workload(method.as_ref(), &workload, &truth, &params);
        for threads in [1usize, 2, 4] {
            let parallel =
                run_workload_parallel(method.as_ref(), &workload, &truth, &params, threads);
            assert_eq!(
                parallel.accuracy,
                sequential.accuracy,
                "{} accuracy diverged at {threads} threads",
                method.name()
            );
            assert_eq!(
                parallel.stats,
                sequential.stats,
                "{} summed stats diverged at {threads} threads",
                method.name()
            );
            assert_eq!(parallel.num_queries, sequential.num_queries);
        }
    }

    // Disk-backed methods keep answers and query-local counters identical;
    // only the random/sequential I/O split may shift with interleaving.
    let va = VaPlusFile::build(&data, VaPlusFileConfig::default()).unwrap();
    let sequential = run_workload(&va, &workload, &truth, &SearchParams::exact(10));
    let parallel = run_workload_parallel(&va, &workload, &truth, &SearchParams::exact(10), 4);
    assert_eq!(parallel.accuracy, sequential.accuracy);
    assert_eq!(
        parallel.stats.distance_computations,
        sequential.stats.distance_computations
    );
    assert_eq!(
        parallel.stats.lower_bound_computations,
        sequential.stats.lower_bound_computations
    );
    assert_eq!(parallel.stats.bytes_read, sequential.stats.bytes_read);
    assert!((parallel.accuracy.avg_recall - 1.0).abs() < 1e-12, "exact stays exact in parallel");
}

#[test]
fn csv_writer_round_trips_report_rows() {
    let data = hydra::data::random_walk(400, 32, 61);
    let workload = hydra::data::noisy_queries(&data, 5, &[0.1], 62);
    let truth = hydra::data::ground_truth(&data, &workload, 5);
    let dstree = DsTree::build(&data, DsTreeConfig::default()).unwrap();
    let report = run_workload(&dstree, &workload, &truth, &SearchParams::exact(5));

    let mut csv = CsvWriter::new(&["method", "map", "qpm"]);
    csv.row([
        report.method.clone(),
        format!("{:.3}", report.accuracy.map),
        format!("{:.1}", report.queries_per_minute),
    ]);
    assert_eq!(csv.num_rows(), 1);
    assert!(csv.as_str().contains("DSTree"));
}
